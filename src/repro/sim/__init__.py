"""Trace-driven workload simulation for the serving stack.

The package splits into three layers:

* :mod:`repro.sim.workload` — deterministic, seedable trace generation: a
  registry of named scenarios (arrival process × popularity model ×
  tenant mix) that render to a :class:`~repro.sim.workload.WorkloadTrace`
  of timestamped requests.
* :mod:`repro.sim.driver` — open- and closed-loop clients that replay a
  trace against the sync :class:`~repro.serve.gateway.Gateway` or the
  :class:`~repro.serve.async_gateway.AsyncGateway` and reduce the
  outcomes to a :class:`~repro.sim.driver.DriveResult`.
* :mod:`repro.sim.matrix` — the config-driven scenario×policy matrix
  runner behind ``python -m repro scenario-bench`` and
  ``benchmarks/bench_scenarios.py``.

Every scenario registered here must be documented in
``docs/scenarios.md`` — a CI drift test enforces the catalog.
"""

from repro.sim.driver import (
    DriveResult,
    drive_closed_loop,
    drive_closed_loop_async,
    drive_open_loop,
    drive_open_loop_async,
)
from repro.sim.matrix import (
    MatrixConfig,
    flatten_metrics,
    load_config,
    matrix_artifact,
    run_matrix,
)
from repro.sim.workload import (
    SCENARIOS,
    Scenario,
    SimRequest,
    WorkloadTrace,
    generate_trace,
    get_scenario,
    list_scenarios,
    zipf_weights,
)

__all__ = [
    "SCENARIOS",
    "DriveResult",
    "MatrixConfig",
    "Scenario",
    "SimRequest",
    "WorkloadTrace",
    "drive_closed_loop",
    "drive_closed_loop_async",
    "drive_open_loop",
    "drive_open_loop_async",
    "flatten_metrics",
    "generate_trace",
    "get_scenario",
    "list_scenarios",
    "load_config",
    "matrix_artifact",
    "run_matrix",
    "zipf_weights",
]
