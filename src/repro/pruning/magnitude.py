"""Magnitude-threshold pruning with masked retraining (the paper's *Magnitude* method).

The workflow mirrors Section 3.2:

1. for each fc-layer, a threshold is chosen so that only the requested
   fraction of weights (the *pruning ratio*, e.g. 9% for AlexNet fc6) is
   kept — everything below the threshold is zeroed;
2. the network is retrained for a few epochs with boolean masks so the
   removed weights stay exactly zero while the surviving ones adapt;
3. every pruned layer is converted to the two-array sparse format.

Dynamic network surgery (DNS) is intentionally not implemented: the paper
evaluates only the Magnitude method because DNS is too expensive for large
networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.nn.network import Network
from repro.nn.train import SGDConfig, SGDTrainer, TrainResult
from repro.pruning.sparse_format import SparseLayer, encode_sparse
from repro.utils.errors import ValidationError
from repro.utils.validation import check_in_range

__all__ = [
    "magnitude_threshold",
    "prune_weights",
    "PruningConfig",
    "PrunedNetwork",
    "prune_network",
]


def magnitude_threshold(weights: np.ndarray, keep_ratio: float) -> float:
    """Magnitude threshold that keeps (approximately) ``keep_ratio`` of the weights."""
    check_in_range(keep_ratio, "keep_ratio", 0.0, 1.0)
    flat = np.abs(np.asarray(weights, dtype=np.float32).ravel())
    if flat.size == 0 or keep_ratio >= 1.0:
        return 0.0
    if keep_ratio <= 0.0:
        return float(np.inf)
    k = int(round(flat.size * keep_ratio))
    k = min(max(k, 1), flat.size)
    # The k-th largest magnitude is the smallest weight we keep.
    return float(np.partition(flat, flat.size - k)[flat.size - k])


def prune_weights(weights: np.ndarray, keep_ratio: float) -> tuple[np.ndarray, np.ndarray]:
    """Zero all weights whose magnitude falls below the keep-ratio threshold.

    Returns ``(pruned_weights, mask)`` where ``mask`` is True for kept weights.
    """
    weights = np.asarray(weights, dtype=np.float32)
    threshold = magnitude_threshold(weights, keep_ratio)
    mask = np.abs(weights) >= threshold
    return weights * mask, mask


@dataclass(frozen=True)
class PruningConfig:
    """Configuration of the pruning step.

    ``ratios`` maps fc-layer name to the fraction of weights kept (the paper's
    "pruning ratio", Tables 2a–2d).  Layers not listed are left dense.
    """

    ratios: Mapping[str, float]
    retrain: bool = True
    retrain_config: SGDConfig = field(
        default_factory=lambda: SGDConfig(epochs=2, learning_rate=0.01, momentum=0.9)
    )

    def __post_init__(self) -> None:
        for name, ratio in self.ratios.items():
            check_in_range(ratio, f"pruning ratio for {name!r}", 0.0, 1.0)


@dataclass
class PrunedNetwork:
    """Result of pruning: the masked network plus per-layer sparse encodings."""

    network: Network
    masks: Dict[str, np.ndarray]
    sparse_layers: Dict[str, SparseLayer]
    retrain_history: Optional[TrainResult] = None

    @property
    def layer_names(self) -> list[str]:
        return list(self.sparse_layers)

    def density(self, layer: str) -> float:
        return self.sparse_layers[layer].density

    @property
    def dense_fc_bytes(self) -> int:
        """Original float32 bytes of all pruned fc-layers."""
        return int(sum(s.dense_bytes for s in self.sparse_layers.values()))

    @property
    def packed_fc_bytes(self) -> int:
        """Two-array (40 bits/entry) bytes of all pruned fc-layers."""
        return int(sum(s.packed_bytes for s in self.sparse_layers.values()))

    @property
    def pruning_compression_ratio(self) -> float:
        """The paper's "CSR" ratio: dense bytes / two-array bytes."""
        packed = self.packed_fc_bytes
        return self.dense_fc_bytes / packed if packed else float("inf")

    def refresh_sparse_layers(self) -> None:
        """Re-encode the sparse layers from the network's current weights."""
        for name in list(self.sparse_layers):
            self.sparse_layers[name] = encode_sparse(self.network.get_weights(name))


def prune_network(
    network: Network,
    config: PruningConfig,
    *,
    train_images: Optional[np.ndarray] = None,
    train_labels: Optional[np.ndarray] = None,
) -> PrunedNetwork:
    """Prune a trained network in place (Step 1 of DeepSZ).

    If ``config.retrain`` is set, training data must be supplied; the network
    is retrained with masks so pruned weights remain zero.
    """
    fc_names = set(network.fc_layer_names())
    for name in config.ratios:
        if name not in fc_names:
            raise ValidationError(
                f"pruning ratio given for {name!r}, which is not an fc-layer of "
                f"{network.name!r} (fc-layers: {sorted(fc_names)})"
            )

    masks: Dict[str, np.ndarray] = {}
    for name, ratio in config.ratios.items():
        pruned, mask = prune_weights(network.get_weights(name), ratio)
        network.set_weights(name, pruned)
        masks[name] = mask

    history: Optional[TrainResult] = None
    if config.retrain:
        if train_images is None or train_labels is None:
            raise ValidationError("retraining requested but no training data supplied")
        trainer = SGDTrainer(config.retrain_config)
        history = trainer.train(network, train_images, train_labels, masks=masks)

    sparse_layers = {
        name: encode_sparse(network.get_weights(name)) for name in config.ratios
    }
    return PrunedNetwork(
        network=network, masks=masks, sparse_layers=sparse_layers, retrain_history=history
    )
