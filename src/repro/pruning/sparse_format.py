"""The two-array sparse representation of a pruned fc-layer.

Unlike textbook CSR (three arrays), the paper uses two 1-D arrays per layer:
a float32 ``data`` array of the non-zero weights and a uint8 ``index`` array
of position *differences* between consecutive non-zeros.  When a gap exceeds
the 8-bit range, a padding entry is emitted: 255 in the index array and 0.0
in the data array (Section 3.2).  Every stored weight therefore costs
40 bits, which is why the post-pruning ratio is slightly below the nominal
1 / pruning-ratio.

Both encode and decode are fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.utils.errors import DecompressionError, ValidationError

__all__ = ["SparseLayer", "encode_sparse", "decode_sparse", "sparse_to_scipy"]

_GAP_LIMIT = 255  #: largest position difference representable in one uint8 entry


@dataclass(frozen=True)
class SparseLayer:
    """A pruned fc-layer in the paper's two-array format.

    Attributes
    ----------
    data:
        float32 values (non-zero weights plus 0.0 padding entries).
    index:
        uint8 position deltas, same length as ``data``.
    shape:
        The dense (rows, cols) shape of the original weight matrix.
    nnz:
        Number of true non-zero weights (excludes padding entries).
    """

    data: np.ndarray
    index: np.ndarray
    shape: tuple[int, int]
    nnz: int

    def __post_init__(self) -> None:
        if self.data.shape != self.index.shape:
            raise ValidationError("data and index arrays must have equal length")

    @property
    def entry_count(self) -> int:
        """Stored entries, padding included."""
        return int(self.data.size)

    @property
    def dense_bytes(self) -> int:
        """Size of the dense float32 matrix this layer came from."""
        return int(np.prod(self.shape)) * 4

    @property
    def packed_bytes(self) -> int:
        """Storage of the two-array format: 40 bits (4 + 1 bytes) per entry."""
        return self.entry_count * 5

    @property
    def compression_ratio(self) -> float:
        """Dense bytes / two-array bytes (the paper's "CSR Size" ratio)."""
        return self.dense_bytes / self.packed_bytes if self.packed_bytes else float("inf")

    @property
    def density(self) -> float:
        """Fraction of weights that survived pruning."""
        total = int(np.prod(self.shape))
        return self.nnz / total if total else 0.0


def encode_sparse(weights: np.ndarray) -> SparseLayer:
    """Encode a (pruned) dense weight matrix into the two-array format."""
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be a 2-D matrix, got shape {weights.shape}")
    flat = weights.ravel()
    positions = np.flatnonzero(flat)
    nnz = int(positions.size)
    if nnz == 0:
        return SparseLayer(
            data=np.zeros(0, dtype=np.float32),
            index=np.zeros(0, dtype=np.uint8),
            shape=weights.shape,
            nnz=0,
        )

    # Gaps between consecutive non-zeros; the first gap is measured from
    # position -1 so that every entry's delta is >= 1.
    gaps = np.diff(positions, prepend=-1).astype(np.int64)
    # Number of 255-padding entries needed in front of each real entry.
    pad_counts = (gaps - 1) // _GAP_LIMIT
    remainders = gaps - pad_counts * _GAP_LIMIT  # final delta, in [1, 255]

    total_entries = int(nnz + pad_counts.sum())
    index = np.empty(total_entries, dtype=np.uint8)
    data = np.zeros(total_entries, dtype=np.float32)

    # Positions of the real (non-padding) entries in the output arrays.
    entry_pos = np.arange(nnz) + np.cumsum(pad_counts)
    index[:] = _GAP_LIMIT  # every slot defaults to a padding entry
    index[entry_pos] = remainders.astype(np.uint8)
    data[entry_pos] = flat[positions]

    return SparseLayer(data=data, index=index, shape=weights.shape, nnz=nnz)


def decode_sparse(layer: SparseLayer, data: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct the dense weight matrix.

    Parameters
    ----------
    layer:
        The sparse layer (provides the index array and shape).
    data:
        Optional replacement data array — this is how DeepSZ rebuilds a layer
        from the *decompressed* values while reusing the lossless index array.
    """
    values = layer.data if data is None else np.asarray(data, dtype=np.float32)
    if values.shape != layer.index.shape:
        raise DecompressionError(
            f"data array length {values.shape} does not match index array {layer.index.shape}"
        )
    total = int(np.prod(layer.shape))
    dense = np.zeros(total, dtype=np.float32)
    if values.size:
        positions = np.cumsum(layer.index.astype(np.int64)) - 1
        if positions[-1] >= total:
            raise DecompressionError("index array addresses past the end of the matrix")
        # Padding entries carry (near-)zero values; writing them is harmless
        # and mirrors the paper's reconstruction.
        dense[positions] = values
    return dense.reshape(layer.shape)


def sparse_to_scipy(layer: SparseLayer) -> sp.csr_matrix:
    """Convert to a SciPy CSR matrix (interop / verification helper)."""
    dense = decode_sparse(layer)
    return sp.csr_matrix(dense)
