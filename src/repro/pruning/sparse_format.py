"""The two-array sparse representation of a pruned fc-layer.

Unlike textbook CSR (three arrays), the paper uses two 1-D arrays per layer:
a float32 ``data`` array of the non-zero weights and a uint8 ``index`` array
of position *differences* between consecutive non-zeros.  When a gap exceeds
the 8-bit range, a padding entry is emitted: 255 in the index array and 0.0
in the data array (Section 3.2).  Every stored weight therefore costs
40 bits, which is why the post-pruning ratio is slightly below the nominal
1 / pruning-ratio.

Both encode and decode are fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.utils.errors import DecompressionError, ValidationError

__all__ = [
    "SparseLayer",
    "encode_sparse",
    "decode_sparse",
    "sparse_positions",
    "sparse_to_scipy",
]

_GAP_LIMIT = 255  #: largest position difference representable in one uint8 entry


@dataclass(frozen=True)
class SparseLayer:
    """A pruned fc-layer in the paper's two-array format.

    Attributes
    ----------
    data:
        float32 values (non-zero weights plus 0.0 padding entries).
    index:
        uint8 position deltas, same length as ``data``.
    shape:
        The dense (rows, cols) shape of the original weight matrix.
    nnz:
        Number of true non-zero weights (excludes padding entries).
    """

    data: np.ndarray
    index: np.ndarray
    shape: tuple[int, int]
    nnz: int

    def __post_init__(self) -> None:
        if self.data.shape != self.index.shape:
            raise ValidationError("data and index arrays must have equal length")

    @property
    def entry_count(self) -> int:
        """Stored entries, padding included."""
        return int(self.data.size)

    @property
    def dense_bytes(self) -> int:
        """Size of the dense float32 matrix this layer came from."""
        return int(np.prod(self.shape)) * 4

    @property
    def packed_bytes(self) -> int:
        """Storage of the two-array format: 40 bits (4 + 1 bytes) per entry."""
        return self.entry_count * 5

    @property
    def compression_ratio(self) -> float:
        """Dense bytes / two-array bytes (the paper's "CSR Size" ratio)."""
        return self.dense_bytes / self.packed_bytes if self.packed_bytes else float("inf")

    @property
    def density(self) -> float:
        """Fraction of weights that survived pruning."""
        total = int(np.prod(self.shape))
        return self.nnz / total if total else 0.0


def encode_sparse(weights: np.ndarray) -> SparseLayer:
    """Encode a (pruned) dense weight matrix into the two-array format."""
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be a 2-D matrix, got shape {weights.shape}")
    flat = weights.ravel()
    positions = np.flatnonzero(flat)
    nnz = int(positions.size)
    if nnz == 0:
        return SparseLayer(
            data=np.zeros(0, dtype=np.float32),
            index=np.zeros(0, dtype=np.uint8),
            shape=weights.shape,
            nnz=0,
        )

    # Gaps between consecutive non-zeros; the first gap is measured from
    # position -1 so that every entry's delta is >= 1.
    gaps = np.diff(positions, prepend=-1).astype(np.int64)
    # Number of 255-padding entries needed in front of each real entry.
    pad_counts = (gaps - 1) // _GAP_LIMIT
    remainders = gaps - pad_counts * _GAP_LIMIT  # final delta, in [1, 255]

    total_entries = int(nnz + pad_counts.sum())
    index = np.empty(total_entries, dtype=np.uint8)
    data = np.zeros(total_entries, dtype=np.float32)

    # Positions of the real (non-padding) entries in the output arrays.
    entry_pos = np.arange(nnz) + np.cumsum(pad_counts)
    index[:] = _GAP_LIMIT  # every slot defaults to a padding entry
    index[entry_pos] = remainders.astype(np.uint8)
    data[entry_pos] = flat[positions]

    return SparseLayer(data=data, index=index, shape=weights.shape, nnz=nnz)


def decode_sparse(layer: SparseLayer, data: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct the dense weight matrix.

    Parameters
    ----------
    layer:
        The sparse layer (provides the index array and shape).
    data:
        Optional replacement data array — this is how DeepSZ rebuilds a layer
        from the *decompressed* values while reusing the lossless index array.
    """
    values = layer.data if data is None else np.asarray(data, dtype=np.float32)
    if values.shape != layer.index.shape:
        raise DecompressionError(
            f"data array length {values.shape} does not match index array {layer.index.shape}"
        )
    total = int(np.prod(layer.shape))
    dense = np.zeros(total, dtype=np.float32)
    if values.size:
        # Padding entries carry (near-)zero values; writing them is harmless
        # and mirrors the paper's reconstruction.
        dense[sparse_positions(layer)] = values
    return dense.reshape(layer.shape)


def sparse_positions(layer: SparseLayer) -> np.ndarray:
    """Flat (row-major) positions of every stored entry, padding included.

    The delta decode shared by :func:`decode_sparse` and
    :func:`sparse_to_scipy`; raises :class:`DecompressionError` when the
    index array is corrupt — a zero delta (every encoded delta is in
    [1, 255], and a zero would make two entries collide on one position)
    or a walk past the end of the matrix.
    """
    if layer.index.size and int(layer.index.min()) < 1:
        raise DecompressionError(
            "index array contains zero deltas (corrupt two-array stream)"
        )
    positions = np.cumsum(layer.index.astype(np.int64)) - 1
    if positions.size and positions[-1] >= int(np.prod(layer.shape)):
        raise DecompressionError("index array addresses past the end of the matrix")
    return positions


def sparse_to_scipy(layer: SparseLayer, data: np.ndarray | None = None) -> sp.csr_matrix:
    """Convert to a SciPy CSR matrix *without* materialising the dense matrix.

    The stored positions are strictly increasing in row-major order, so the
    CSR structure falls out directly: column indices are ``position % cols``
    and the row pointer is a ``searchsorted`` over ``position // cols``.
    This is the compressed-domain entry point of the sparse inference path —
    a pruned fc-layer goes from the two-array format to a matmul-ready CSR
    in O(entries), never touching the O(rows * cols) dense form.

    Parameters
    ----------
    layer:
        The sparse layer (provides the index array and shape).
    data:
        Optional replacement data array (e.g. SZ-decompressed values).  When
        given, *every* stored entry is kept — including padding slots, whose
        lossy-decoded values are near zero — so the CSR holds exactly what
        :func:`decode_sparse` would write into the dense matrix.  Without it
        the exact 0.0 padding entries are dropped and ``csr.nnz`` equals
        ``layer.nnz``.
    """
    values = layer.data if data is None else np.asarray(data, dtype=np.float32)
    if values.shape != layer.index.shape:
        raise DecompressionError(
            f"data array length {values.shape} does not match index array {layer.index.shape}"
        )
    rows_n, cols_n = (int(d) for d in layer.shape)
    if values.size == 0:
        return sp.csr_matrix(layer.shape, dtype=np.float32)
    positions = sparse_positions(layer)
    rows = positions // cols_n
    indices = (positions % cols_n).astype(np.int32)
    indptr = np.searchsorted(rows, np.arange(rows_n + 1)).astype(np.int32)
    csr = sp.csr_matrix(
        (values.astype(np.float32, copy=True), indices, indptr), shape=layer.shape
    )
    if data is None:
        # Padding entries are exact 0.0 by construction; dropping them makes
        # csr.nnz the true non-zero count (the documented interop contract).
        csr.eliminate_zeros()
    return csr
