"""Network pruning and the two-array sparse weight format (Step 1 of DeepSZ).

The paper builds on Deep Compression's *magnitude threshold plus retraining*
pruning: per-layer thresholds remove the smallest-magnitude weights, then the
network is retrained with masks so the pruned weights stay zero.  After
pruning, each fc-layer is stored as two 1-D arrays (Section 3.2):

* the **data array** — float32 values of the non-zero weights (plus the
  occasional zero padding), and
* the **index array** — uint8 differences between consecutive non-zero
  positions, with a ``255 + zero-padding`` escape when a gap exceeds the
  8-bit range.

The data array is what SZ compresses lossily; the index array is compressed
losslessly (Step 4).
"""

from repro.pruning.magnitude import (
    magnitude_threshold,
    prune_weights,
    PruningConfig,
    PrunedNetwork,
    prune_network,
)
from repro.pruning.sparse_format import (
    SparseLayer,
    encode_sparse,
    decode_sparse,
    sparse_to_scipy,
)

__all__ = [
    "magnitude_threshold",
    "prune_weights",
    "PruningConfig",
    "PrunedNetwork",
    "prune_network",
    "SparseLayer",
    "encode_sparse",
    "decode_sparse",
    "sparse_to_scipy",
]
