"""Model storage: the random-access ``.dsz`` archive and the content store.

Two pieces sit between the codec core and the serving runtime:

* :mod:`repro.store.archive` — the footer-indexed ``.dsz`` archive format
  (v2).  Per-layer segments with offsets and CRC32s in a manifest found
  from the file footer, so any layer is readable lazily without decoding
  siblings; v1 monolithic ``CompressedModel.to_bytes`` blobs load through
  a compat reader that synthesises the same manifest.
* :mod:`repro.store.cas` — :class:`ModelStore`, a SHA-256 content-addressed
  on-disk store of archives with dedup, integrity verification on read,
  and an optional LRU byte budget.

A third piece, :mod:`repro.store.assess_cache`, reuses the CAS layout for
the assessment engine: candidate evaluation results keyed by the SHA-256 of
their inputs (layer content, error bound, codec settings, test set), so
repeated Step 2 runs are incremental.
"""

from repro.store.archive import (
    ARCHIVE_MAGIC,
    ArchiveManifest,
    LayerEntry,
    ModelArchive,
    SegmentEntry,
    archive_bytes,
    is_archive,
    manifest_from_dict,
    manifest_to_dict,
    write_archive,
)
from repro.store.assess_cache import (
    AssessmentCache,
    AssessmentCacheStats,
    sha256_array,
    test_set_digest,
)
from repro.store.cas import ModelStore, StoreStats

__all__ = [
    "AssessmentCache",
    "AssessmentCacheStats",
    "sha256_array",
    "test_set_digest",
    "ARCHIVE_MAGIC",
    "ArchiveManifest",
    "LayerEntry",
    "ModelArchive",
    "SegmentEntry",
    "archive_bytes",
    "is_archive",
    "manifest_from_dict",
    "manifest_to_dict",
    "write_archive",
    "ModelStore",
    "StoreStats",
]
