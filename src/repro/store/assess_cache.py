"""Persistent content-keyed cache of assessment-candidate results.

Step 2 of DeepSZ evaluates many ``(layer, error bound)`` candidates, and the
result of each one is a pure function of its inputs: the layer's two-array
content, the error bound, the codec configuration, and the test set.  This
module gives those results a home next to the :class:`~repro.store.ModelStore`
CAS so repeated runs are incremental — re-assessing the same model (or a
model sharing layers with one already assessed) only pays for candidates it
has never seen.  Speculative evaluations the parallel engine discards from a
result are still written here, so even "wasted" speculation speeds up the
next run.

The cache key is the SHA-256 of a canonical JSON encoding of

* the layer's ``data`` / ``index`` SHA-256s and dense shape,
* the canonical error-bound key (:func:`repro.core.assessment.bound_key`),
* the codec settings (codec name, chunk size, capacity, lossless backends),
* the test set's image/label SHA-256s and the evaluation batch size,

and each record is a tiny JSON file stored with the same two-level directory
fan-out and atomic-rename discipline as the object store.  Accuracies
round-trip exactly (JSON floats use shortest-repr encoding), so cached and
freshly computed assessments are bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["AssessmentCacheStats", "AssessmentCache", "sha256_array", "test_set_digest"]


def sha256_array(array: np.ndarray) -> str:
    """Content hash of an array's raw bytes (C-order, dtype included)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def test_set_digest(test_images: np.ndarray, test_labels: np.ndarray) -> str:
    """One digest covering the whole evaluation set (images and labels)."""
    return hashlib.sha256(
        (sha256_array(test_images) + sha256_array(test_labels)).encode()
    ).hexdigest()


@dataclass
class AssessmentCacheStats:
    """Counters over one :class:`AssessmentCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class AssessmentCache:
    """On-disk key/value store of ``(accuracy, compressed_bytes)`` records."""

    root: Union[str, Path]
    stats: AssessmentCacheStats = field(default_factory=AssessmentCacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._lock = threading.Lock()
        (self.root / "records").mkdir(parents=True, exist_ok=True)

    @staticmethod
    def key_digest(key: Dict[str, object]) -> str:
        """Canonical digest of a key mapping (order-independent)."""
        if not key:
            raise ValidationError("assessment cache key must not be empty")
        blob = json.dumps(key, sort_keys=True, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def _record_path(self, digest: str) -> Path:
        return self.root / "records" / digest[:2] / f"{digest}.json"

    def get(self, key: Dict[str, object]) -> tuple[float, int] | None:
        """Look up a candidate result; ``None`` on miss (or unreadable record)."""
        path = self._record_path(self.key_digest(key))
        try:
            record = json.loads(path.read_text())
            result = (float(record["accuracy"]), int(record["compressed_bytes"]))
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return result

    def put(self, key: Dict[str, object], accuracy: float, compressed_bytes: int) -> None:
        """Persist a candidate result (atomic; concurrent same-key puts race
        benignly — the records are identical by construction)."""
        digest = self.key_digest(key)
        path = self._record_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "accuracy": float(accuracy),
            "compressed_bytes": int(compressed_bytes),
            "key": key,
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_text(json.dumps(record, sort_keys=True))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        with self._lock:
            self.stats.puts += 1

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "records").glob("*/*.json"))
