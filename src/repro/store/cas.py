"""Content-addressed on-disk store for compressed-model archives.

A :class:`ModelStore` is the distribution side of the edge scenario: the
cloud puts every encoded archive into the store once, keyed by the SHA-256
of its bytes, and any number of serving nodes / edge devices fetch by
digest.  Content addressing buys three properties for free:

* **dedup** — putting the same archive twice stores one object (the second
  put is a metadata touch, counted in :attr:`StoreStats.dedup_hits`);
* **integrity** — a read re-hashes the object and refuses to hand out bytes
  whose digest no longer matches the key (bit rot, torn writes);
* **immutability** — objects never change in place, so readers can mmap
  them without coordination.

Objects live under ``root/objects/<aa>/<digest>.dsz`` (two-level fan-out so
directories stay small) with a JSON index at ``root/index.json`` recording
sizes and last-access times.  An optional ``max_bytes`` budget turns the
store into a bounded cache: puts that would exceed the budget evict the
least-recently-used objects first.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.store.archive import ModelArchive, archive_bytes
from repro.utils.errors import IntegrityError, ValidationError

__all__ = ["StoreStats", "ModelStore"]

_DIGEST_LEN = 64  # sha256 hex


@dataclass
class StoreStats:
    """Counters accumulated over one :class:`ModelStore` instance's lifetime."""

    puts: int = 0
    dedup_hits: int = 0
    gets: int = 0
    evictions: int = 0
    integrity_failures: int = 0
    objects: int = 0
    total_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _ObjectRecord:
    size: int
    created: float
    last_used: float
    network: str = ""

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ModelStore:
    """SHA-256 content-addressed archive store with optional LRU budget."""

    root: Union[str, Path]
    max_bytes: int | None = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.max_bytes is not None and int(self.max_bytes) < 1:
            raise ValidationError("max_bytes must be positive (or None)")
        self._lock = threading.RLock()
        # Index persistence is split: the store lock only *snapshots* the
        # index (a json.dumps of in-memory state); the actual tmp-write +
        # rename happens under this dedicated I/O lock after the store lock
        # is released, so a slow disk never serialises gets and puts.  A
        # generation counter keeps concurrent writers from clobbering a
        # newer snapshot with an older one.
        self._io_lock = threading.Lock()
        self._index_gen = 0
        self._written_gen = 0
        self._last_touch_save = 0.0
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self._index: Dict[str, _ObjectRecord] = self._load_index()
        self._refresh_totals()

    # -- index persistence -------------------------------------------------
    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> Dict[str, _ObjectRecord]:
        if not self._index_path.exists():
            return {}
        try:
            raw = json.loads(self._index_path.read_text())
        except (json.JSONDecodeError, OSError):
            raw = {}
        index: Dict[str, _ObjectRecord] = {}
        for digest, rec in raw.items():
            path = self._object_path(digest)
            if path.exists():
                index[digest] = _ObjectRecord(
                    size=int(rec.get("size", path.stat().st_size)),
                    created=float(rec.get("created", 0.0)),
                    last_used=float(rec.get("last_used", 0.0)),
                    network=str(rec.get("network", "")),
                )
        # Adopt objects present on disk but missing from the index (e.g. a
        # crash between the object write and the index write).
        for path in (self.root / "objects").glob("*/*.dsz"):
            digest = path.stem
            if digest not in index:
                stat = path.stat()
                index[digest] = _ObjectRecord(
                    size=stat.st_size, created=stat.st_mtime, last_used=stat.st_mtime
                )
        return index

    def _snapshot_index(self) -> "tuple[int, str]":
        """Serialise the index under the store lock; caller writes it later."""
        self._index_gen += 1
        payload = json.dumps(
            {d: r.as_dict() for d, r in self._index.items()}, sort_keys=True
        )
        return self._index_gen, payload

    def _write_index(self, gen: int, payload: str) -> None:
        """Persist a snapshot (store lock released; see ``_io_lock`` note)."""
        with self._io_lock:
            if gen <= self._written_gen:
                return  # a newer snapshot already reached disk
            tmp = self._index_path.with_suffix(".json.tmp")
            tmp.write_text(payload)
            os.replace(tmp, self._index_path)
            self._written_gen = gen

    def _refresh_totals(self) -> None:
        self.stats.objects = len(self._index)
        self.stats.total_bytes = int(sum(r.size for r in self._index.values()))

    def _object_path(self, digest: str) -> Path:
        self._check_digest(digest)
        return self.root / "objects" / digest[:2] / f"{digest}.dsz"

    @staticmethod
    def _check_digest(digest: str) -> None:
        if len(digest) != _DIGEST_LEN or not all(
            c in "0123456789abcdef" for c in digest
        ):
            raise ValidationError(f"not a sha256 hex digest: {digest!r}")

    # -- writes ------------------------------------------------------------
    def put_bytes(self, blob: bytes, *, network: str = "") -> str:
        """Store an archive blob; returns its sha256 digest (dedups).

        The object bytes are written to a caller-unique temp file *outside*
        the store lock (large puts must not serialise unrelated gets); only
        the dedup check, eviction, atomic rename, and index update run
        under it.
        """
        digest = hashlib.sha256(blob).hexdigest()
        now = time.time()
        path = self._object_path(digest)
        with self._lock:
            snapshot = None
            if digest in self._index and path.exists():
                self._index[digest].last_used = now
                self.stats.dedup_hits += 1
                snapshot = self._snapshot_index()
            elif self.max_bytes is not None and len(blob) > self.max_bytes:
                raise ValidationError(
                    f"object of {len(blob)} bytes exceeds the store budget "
                    f"of {self.max_bytes} bytes"
                )
        if snapshot is not None:
            self._write_index(*snapshot)
            return digest
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_bytes(blob)
            with self._lock:
                if digest in self._index and path.exists():
                    # Lost a same-content put race: keep the winner's object.
                    self._index[digest].last_used = now
                    self.stats.dedup_hits += 1
                else:
                    self._evict_for(len(blob))
                    os.replace(tmp, path)
                    self._index[digest] = _ObjectRecord(
                        size=len(blob), created=now, last_used=now, network=network
                    )
                    self.stats.puts += 1
                    self._refresh_totals()
                snapshot = self._snapshot_index()
            self._write_index(*snapshot)
        finally:
            tmp.unlink(missing_ok=True)
        return digest

    def put_model(self, model) -> str:
        """Encode a :class:`~repro.core.encoder.CompressedModel` and store it."""
        return self.put_bytes(archive_bytes(model), network=model.network)

    def put_file(self, path: Union[str, Path]) -> str:
        """Store an existing archive file's bytes."""
        return self.put_bytes(Path(path).read_bytes())

    def _evict_for(self, incoming: int) -> None:
        """Drop least-recently-used objects until ``incoming`` bytes fit."""
        if self.max_bytes is None:
            return
        total = int(sum(r.size for r in self._index.values()))
        victims = sorted(self._index.items(), key=lambda kv: kv[1].last_used)
        for digest, record in victims:
            if total + incoming <= self.max_bytes:
                break
            self._remove_object(digest)
            total -= record.size
            self.stats.evictions += 1

    def _remove_object(self, digest: str) -> None:
        path = self._object_path(digest)
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        self._index.pop(digest, None)
        self._refresh_totals()

    def delete(self, digest: str) -> bool:
        """Remove an object; returns True when it existed."""
        with self._lock:
            existed = digest in self._index
            self._remove_object(digest)
            snapshot = self._snapshot_index()
        self._write_index(*snapshot)
        return existed

    # -- reads -------------------------------------------------------------
    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index and self._object_path(digest).exists()

    def digests(self) -> list[str]:
        """Stored digests, most recently used last."""
        with self._lock:
            return [
                d
                for d, _ in sorted(
                    self._index.items(), key=lambda kv: kv[1].last_used
                )
            ]

    def resolve(self, prefix: str) -> str:
        """Expand a digest prefix to the unique full digest it names.

        Serving front-ends address models by digest, and humans hand those
        around truncated (``sha256:ab12cd…``); this resolves a prefix of at
        least 4 hex chars, raising when it matches no object or more than
        one.  An optional ``sha256:`` scheme prefix is accepted and
        stripped.
        """
        prefix = prefix.lower().removeprefix("sha256:")
        if len(prefix) < 4 or not all(c in "0123456789abcdef" for c in prefix):
            raise ValidationError(
                f"digest prefix must be >= 4 hex chars, got {prefix!r}"
            )
        with self._lock:
            matches = [d for d in self._index if d.startswith(prefix)]
        if not matches:
            raise ValidationError(f"store has no object with digest prefix {prefix!r}")
        if len(matches) > 1:
            raise ValidationError(
                f"digest prefix {prefix!r} is ambiguous: "
                f"{', '.join(d[:16] + '…' for d in sorted(matches))}"
            )
        return matches[0]

    def _touch_locked(self, digest: str) -> "tuple[int, str] | None":
        """Bump an object's recency; snapshot the index at most once per
        second (touches are hot-path metadata — losing the last second of
        access times on a crash only perturbs LRU order, while mutations
        always persist immediately).  Returns a snapshot for the caller to
        :meth:`_write_index` after releasing the store lock, or ``None``."""
        self._index[digest].last_used = time.time()
        self.stats.gets += 1
        now = time.monotonic()
        if now - self._last_touch_save >= 1.0:
            self._last_touch_save = now
            return self._snapshot_index()
        return None

    def flush(self) -> None:
        """Force-persist the index (recency updates are otherwise throttled)."""
        with self._lock:
            snapshot = self._snapshot_index()
        self._write_index(*snapshot)

    def get_bytes(self, digest: str, *, verify: bool = True) -> bytes:
        """Read an object's bytes; ``verify`` re-hashes and checks the key.

        The read and hash run outside the store lock (objects are immutable
        once written), so large-object reads do not serialise the store.
        """
        with self._lock:
            path = self._object_path(digest)
            if digest not in self._index or not path.exists():
                raise ValidationError(f"store has no object {digest}")
            snapshot = self._touch_locked(digest)
        if snapshot is not None:
            self._write_index(*snapshot)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            # Evicted between the existence check and the read.
            raise ValidationError(f"store has no object {digest}") from None
        if verify and hashlib.sha256(blob).hexdigest() != digest:
            with self._lock:
                self.stats.integrity_failures += 1
            raise IntegrityError(
                f"object {digest[:12]}… failed integrity verification: "
                "stored bytes no longer hash to their content address"
            )
        return blob

    def open(self, digest: str, *, verify: bool = True) -> ModelArchive:
        """Open a stored archive for random access.

        With ``verify`` (the default) the whole object is re-hashed before
        the archive is opened; pass ``verify=False`` to trust the object and
        rely on the archive's per-segment CRC32s instead (the cheap option
        for very large archives).
        """
        if verify:
            return ModelArchive.from_bytes(self.get_bytes(digest, verify=True))
        with self._lock:
            path = self._object_path(digest)
            if digest not in self._index or not path.exists():
                raise ValidationError(f"store has no object {digest}")
            snapshot = self._touch_locked(digest)
        if snapshot is not None:
            self._write_index(*snapshot)
        try:
            # Opened outside the store lock (the mmap/open must not
            # serialise the store); an eviction racing us unlinks the path,
            # which surfaces here and maps to the same miss error as
            # get_bytes.
            return ModelArchive.open(path)
        except FileNotFoundError:
            raise ValidationError(f"store has no object {digest}") from None
