"""The random-access ``.dsz`` model archive (format v2).

PR 1 left :meth:`repro.core.encoder.CompressedModel.to_bytes` as a monolithic
blob: the JSON header sits at the front, every layer's payload follows, and a
reader must slurp the whole container before it can touch a single layer.
The archive format here is the random-access replacement — the storage layer
under the :mod:`repro.serve` runtime:

```
offset 0        8-byte magic  b"DSZARC2\\n"
offset 8        segment bytes, back to back (one "sz" + one "index" segment
                per layer, in layer order; offsets recorded in the manifest)
...             manifest: UTF-8 JSON (network, per-layer metadata, and for
                every segment its absolute offset, length and CRC32)
file end - 28   footer: "<QQI" manifest_offset, manifest_length,
                manifest_crc32, then the 8-byte magic again
```

Because the manifest is found *from the footer*, a reader seeks to the end,
reads the manifest, and can then fetch any single layer's segments by offset
— over a file, an ``mmap``, or an in-memory buffer — without reading, CRC-
checking, or decoding any sibling layer.  Every segment carries a CRC32 so
lazy reads still detect corruption, and the manifest itself is checksummed
so a damaged index never silently mis-addresses segments.

v1 monolithic blobs (``CompressedModel.to_bytes``) remain readable through
the compat path: their named-section header *is* a segment index (name +
length in order), so :class:`ModelArchive` synthesises a manifest with
computed offsets and serves lazy per-layer reads from v1 blobs too.  v1
blobs written after PR 2 carry per-payload CRC32s in their layer metadata,
which the compat reader picks up; older blobs simply skip checksum
verification.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Dict, Mapping, Union

from repro.core.encoder import CompressedLayer, CompressedModel
from repro.utils.errors import DecompressionError, ValidationError

__all__ = [
    "ARCHIVE_MAGIC",
    "FOOTER_SIZE",
    "SegmentEntry",
    "LayerEntry",
    "ArchiveManifest",
    "manifest_to_dict",
    "manifest_from_dict",
    "archive_bytes",
    "write_archive",
    "is_archive",
    "ModelArchive",
]

#: Leading and trailing magic of a v2 archive.
ARCHIVE_MAGIC = b"DSZARC2\n"

_FOOTER = struct.Struct("<QQI")

#: Total footer size: manifest offset + length + CRC32, then the magic.
FOOTER_SIZE = _FOOTER.size + len(ARCHIVE_MAGIC)

#: Manifest format tag (bumped together with ARCHIVE_MAGIC on layout changes).
_MANIFEST_FORMAT = "dsz-manifest-v2"

#: Segment kinds every layer stores, in on-disk order.
SEGMENT_KINDS = ("sz", "index")

_V1_FRAME_LEN = struct.Struct("<Q")
_V1_MAGIC = "repro-deepsz-model-v1"


# ---------------------------------------------------------------------------
# Manifest model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentEntry:
    """Location (and optional checksum) of one byte segment in the archive."""

    offset: int
    length: int
    crc32: int | None = None  #: None for pre-checksum v1 blobs

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValidationError("segment offset/length must be non-negative")
        if self.crc32 is not None and not (0 <= int(self.crc32) < 2**32):
            raise ValidationError("segment crc32 must fit in 32 bits")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class LayerEntry:
    """Per-layer manifest record: codec metadata plus segment locations."""

    name: str
    error_bound: float
    shape: tuple[int, int]
    nnz: int
    entry_count: int
    index_backend: str
    data_codec: str
    segments: Mapping[str, SegmentEntry]

    def __post_init__(self) -> None:
        missing = set(SEGMENT_KINDS) - set(self.segments)
        if missing:
            raise ValidationError(
                f"layer {self.name!r} manifest is missing segments: {sorted(missing)}"
            )

    @property
    def compressed_bytes(self) -> int:
        return int(sum(seg.length for seg in self.segments.values()))


@dataclass(frozen=True)
class ArchiveManifest:
    """The archive index: model-level metadata plus every layer's entry."""

    network: str
    expected_accuracy_loss: float
    layers: Mapping[str, LayerEntry]
    version: int = 2
    extra: Mapping[str, object] = field(default_factory=dict)

    @property
    def layer_names(self) -> list[str]:
        return list(self.layers)

    @property
    def compressed_bytes(self) -> int:
        return int(sum(entry.compressed_bytes for entry in self.layers.values()))


def manifest_to_dict(manifest: ArchiveManifest) -> dict:
    """Encode a manifest as the JSON-ready dict stored in the archive."""
    layers = {}
    for name, entry in manifest.layers.items():
        layers[name] = {
            "error_bound": float(entry.error_bound),
            "shape": [int(entry.shape[0]), int(entry.shape[1])],
            "nnz": int(entry.nnz),
            "entry_count": int(entry.entry_count),
            "index_backend": entry.index_backend,
            "data_codec": entry.data_codec,
            "segments": {
                kind: {
                    "offset": int(seg.offset),
                    "length": int(seg.length),
                    **({"crc32": int(seg.crc32)} if seg.crc32 is not None else {}),
                }
                for kind, seg in entry.segments.items()
            },
        }
    return {
        "format": _MANIFEST_FORMAT,
        "version": int(manifest.version),
        "network": manifest.network,
        "expected_accuracy_loss": float(manifest.expected_accuracy_loss),
        "layers": layers,
        **({"extra": dict(manifest.extra)} if manifest.extra else {}),
    }


def manifest_from_dict(payload: Mapping) -> ArchiveManifest:
    """Decode :func:`manifest_to_dict` output (corrupt input raises
    :class:`DecompressionError`, matching the rest of the read path)."""
    try:
        if payload.get("format") != _MANIFEST_FORMAT:
            raise DecompressionError(
                f"unknown manifest format {payload.get('format')!r}"
            )
        layers: Dict[str, LayerEntry] = {}
        for name, info in payload["layers"].items():
            segments = {
                kind: SegmentEntry(
                    offset=int(seg["offset"]),
                    length=int(seg["length"]),
                    crc32=int(seg["crc32"]) if "crc32" in seg else None,
                )
                for kind, seg in info["segments"].items()
            }
            layers[name] = LayerEntry(
                name=name,
                error_bound=float(info["error_bound"]),
                shape=(int(info["shape"][0]), int(info["shape"][1])),
                nnz=int(info["nnz"]),
                entry_count=int(info["entry_count"]),
                index_backend=str(info["index_backend"]),
                data_codec=str(info["data_codec"]),
                segments=segments,
            )
        return ArchiveManifest(
            network=str(payload["network"]),
            expected_accuracy_loss=float(payload["expected_accuracy_loss"]),
            layers=layers,
            version=int(payload.get("version", 2)),
            extra=dict(payload.get("extra", {})),
        )
    except DecompressionError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError, ValidationError) as exc:
        raise DecompressionError(f"corrupt archive manifest: {exc}") from exc


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def write_archive(model: CompressedModel, destination: Union[str, Path, BinaryIO]) -> int:
    """Write ``model`` as a v2 archive; returns the number of bytes written.

    ``destination`` is a path (written atomically via a temp file) or any
    binary stream.
    """
    if isinstance(destination, (str, Path)):
        path = Path(destination)
        # Writer-unique temp name: concurrent writers to the same target
        # must not interleave into one temp file; the rename stays atomic.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            with open(tmp, "wb") as stream:
                written = _write_archive_stream(model, stream)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return written
    return _write_archive_stream(model, destination)


def archive_bytes(model: CompressedModel) -> bytes:
    """Serialise ``model`` as an in-memory v2 archive."""
    buf = io.BytesIO()
    _write_archive_stream(model, buf)
    return buf.getvalue()


def _write_archive_stream(model: CompressedModel, stream: BinaryIO) -> int:
    stream.write(ARCHIVE_MAGIC)
    offset = len(ARCHIVE_MAGIC)
    layers: Dict[str, LayerEntry] = {}
    for name, layer in model.layers.items():
        segments: Dict[str, SegmentEntry] = {}
        for kind, payload in (("sz", layer.sz_payload), ("index", layer.index_payload)):
            payload = bytes(payload)
            segments[kind] = SegmentEntry(
                offset=offset, length=len(payload), crc32=zlib.crc32(payload)
            )
            stream.write(payload)
            offset += len(payload)
        layers[name] = LayerEntry(
            name=name,
            error_bound=layer.error_bound,
            shape=layer.shape,
            nnz=layer.nnz,
            entry_count=layer.entry_count,
            index_backend=layer.index_backend,
            data_codec=layer.data_codec,
            segments=segments,
        )
    manifest = ArchiveManifest(
        network=model.network,
        expected_accuracy_loss=model.expected_accuracy_loss,
        layers=layers,
    )
    blob = json.dumps(manifest_to_dict(manifest), sort_keys=True).encode("utf-8")
    stream.write(blob)
    stream.write(_FOOTER.pack(offset, len(blob), zlib.crc32(blob)))
    stream.write(ARCHIVE_MAGIC)
    return offset + len(blob) + FOOTER_SIZE


# ---------------------------------------------------------------------------
# Byte sources (file / mmap / buffer) for random-access reads
# ---------------------------------------------------------------------------


class _BufferSource:
    """Random access over bytes / memoryview / mmap."""

    def __init__(self, buf) -> None:
        self._view = memoryview(buf)

    @property
    def size(self) -> int:
        return self._view.nbytes

    def read_at(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.size:
            raise DecompressionError(
                f"archive read out of bounds: [{offset}, {offset + length}) "
                f"of {self.size} bytes"
            )
        return bytes(self._view[offset : offset + length])

    def close(self) -> None:
        self._view.release()


class _FileSource:
    """Random access over a seekable file handle (fallback when the file
    cannot be memory-mapped); a lock serialises seek+read pairs so the
    source stays safe under the serving runtime's thread fan-out."""

    def __init__(self, handle: BinaryIO, size: int) -> None:
        self._handle = handle
        self._size = size
        self._lock = threading.Lock()

    @property
    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self._size:
            raise DecompressionError(
                f"archive read out of bounds: [{offset}, {offset + length}) "
                f"of {self._size} bytes"
            )
        with self._lock:
            self._handle.seek(offset)
            data = self._handle.read(length)
        if len(data) != length:
            raise DecompressionError(
                f"short archive read at offset {offset}: wanted {length} bytes, "
                f"got {len(data)}"
            )
        return data

    def close(self) -> None:
        self._handle.close()


def is_archive(data: Union[bytes, memoryview]) -> bool:
    """True when ``data`` starts with the v2 archive magic."""
    return bytes(data[: len(ARCHIVE_MAGIC)]) == ARCHIVE_MAGIC


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


class ModelArchive:
    """Random-access reader over a ``.dsz`` archive (or a v1 compat blob).

    Layers are fetched independently: :meth:`read_layer` touches only the
    target layer's segment bytes, verifies their CRC32 (when recorded), and
    returns a :class:`CompressedLayer` — sibling layers are never read, so a
    multi-hundred-MB archive serves a single layer with a few page faults.

    Use :meth:`open` for files (memory-mapped when possible) and
    :meth:`from_bytes` for in-memory blobs; both accept v1 monolithic
    ``CompressedModel.to_bytes`` output via the compat manifest synthesiser.
    Instances are context managers; reads are thread-safe.
    """

    def __init__(
        self,
        source,
        manifest: ArchiveManifest,
        *,
        version: int = 2,
        closer=None,
    ) -> None:
        self._source = source
        self._manifest = manifest
        self._version = version
        self._closer = closer
        self._closed = False

    # -- constructors ------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path], *, use_mmap: bool = True) -> "ModelArchive":
        """Open an archive file for random access (mmap-backed by default)."""
        handle = open(path, "rb")
        try:
            size = os.fstat(handle.fileno()).st_size
            source = None
            if use_mmap and size > 0:
                try:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except (OSError, ValueError):
                    mapped = None
                if mapped is not None:
                    buffer_source = _BufferSource(mapped)

                    def closer(m=mapped, h=handle, s=buffer_source):
                        s.close()
                        m.close()
                        h.close()

                    return cls._from_source(buffer_source, closer=closer)
            source = _FileSource(handle, size)
            return cls._from_source(source, closer=source.close)
        except BaseException:
            handle.close()
            raise

    @classmethod
    def from_bytes(cls, data: Union[bytes, bytearray, memoryview]) -> "ModelArchive":
        """Open an in-memory archive (v2 or v1 compat) for random access."""
        source = _BufferSource(bytes(data) if isinstance(data, bytearray) else data)
        return cls._from_source(source, closer=source.close)

    @classmethod
    def _from_source(cls, source, *, closer=None) -> "ModelArchive":
        if source.size >= len(ARCHIVE_MAGIC) and is_archive(
            source.read_at(0, len(ARCHIVE_MAGIC))
        ):
            manifest = cls._read_v2_manifest(source)
            return cls(source, manifest, version=2, closer=closer)
        manifest = cls._read_v1_manifest(source)
        return cls(source, manifest, version=1, closer=closer)

    # -- manifest parsing --------------------------------------------------
    @staticmethod
    def _read_v2_manifest(source) -> ArchiveManifest:
        if source.size < len(ARCHIVE_MAGIC) + FOOTER_SIZE:
            raise DecompressionError(
                f"archive too small for a footer ({source.size} bytes); truncated?"
            )
        footer = source.read_at(source.size - FOOTER_SIZE, FOOTER_SIZE)
        if footer[_FOOTER.size :] != ARCHIVE_MAGIC:
            raise DecompressionError(
                "archive footer magic missing (file truncated or not a .dsz archive)"
            )
        offset, length, crc = _FOOTER.unpack(footer[: _FOOTER.size])
        if offset + length > source.size - FOOTER_SIZE:
            raise DecompressionError(
                f"archive manifest [{offset}, {offset + length}) overruns the file"
            )
        blob = source.read_at(offset, length)
        if zlib.crc32(blob) != crc:
            raise DecompressionError("archive manifest failed CRC32 verification")
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DecompressionError(f"corrupt archive manifest: {exc}") from exc
        manifest = manifest_from_dict(payload)
        for entry in manifest.layers.values():
            for kind, seg in entry.segments.items():
                if seg.end > offset:
                    raise DecompressionError(
                        f"layer {entry.name!r} {kind} segment overruns the manifest"
                    )
        return manifest

    @staticmethod
    def _read_v1_manifest(source) -> ArchiveManifest:
        """Synthesise a manifest from a v1 ``to_bytes`` blob.

        The v1 named-section header records ``[name, length]`` pairs in
        on-disk order, which is exactly a segment index once the cumulative
        offsets are computed — so v1 blobs get lazy per-layer reads too.
        """
        if source.size < _V1_FRAME_LEN.size:
            raise DecompressionError("blob too small to be a compressed model")
        (header_len,) = _V1_FRAME_LEN.unpack(source.read_at(0, _V1_FRAME_LEN.size))
        if _V1_FRAME_LEN.size + header_len > source.size:
            raise DecompressionError("truncated v1 container header")
        try:
            header = json.loads(
                source.read_at(_V1_FRAME_LEN.size, header_len).decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DecompressionError(
                f"not a .dsz archive and not a v1 compressed model: {exc}"
            ) from exc
        layers: Dict[str, LayerEntry] = {}
        try:
            meta = header.get("meta", {})
            if meta.get("magic") != _V1_MAGIC:
                raise DecompressionError("not a DeepSZ compressed model (bad magic)")
            offsets: Dict[str, SegmentEntry] = {}
            cursor = _V1_FRAME_LEN.size + header_len
            for name, length in header.get("sections", []):
                offsets[name] = SegmentEntry(offset=cursor, length=int(length))
                cursor += int(length)
            if cursor > source.size:
                raise DecompressionError("v1 container sections overrun the blob")
            for name, info in meta["layers"].items():
                crcs = info.get("crc32", {})
                segments: Dict[str, SegmentEntry] = {}
                for kind in SEGMENT_KINDS:
                    base = offsets[f"{name}/{kind}"]
                    segments[kind] = SegmentEntry(
                        offset=base.offset,
                        length=base.length,
                        crc32=int(crcs[kind]) if kind in crcs else None,
                    )
                layers[name] = LayerEntry(
                    name=name,
                    error_bound=float(info["error_bound"]),
                    shape=(int(info["shape"][0]), int(info["shape"][1])),
                    nnz=int(info["nnz"]),
                    entry_count=int(info["entry_count"]),
                    index_backend=str(info["index_backend"]),
                    data_codec=str(info.get("data_codec", "sz")),
                    segments=segments,
                )
        except DecompressionError:
            raise
        except (
            KeyError,
            TypeError,
            ValueError,
            IndexError,
            AttributeError,
        ) as exc:
            raise DecompressionError(f"corrupt v1 container metadata: {exc}") from exc
        return ArchiveManifest(
            network=str(meta.get("network", "")),
            expected_accuracy_loss=float(meta.get("expected_accuracy_loss", 0.0)),
            layers=layers,
            version=1,
        )

    # -- properties --------------------------------------------------------
    @property
    def manifest(self) -> ArchiveManifest:
        return self._manifest

    @property
    def version(self) -> int:
        """2 for native archives, 1 for v1 monolithic blobs (compat path)."""
        return self._version

    @property
    def layer_names(self) -> list[str]:
        return self._manifest.layer_names

    @property
    def size(self) -> int:
        return self._source.size

    # -- reads -------------------------------------------------------------
    def segment(self, layer: str, kind: str, *, verify: bool = True) -> bytes:
        """Raw bytes of one layer segment (CRC-verified when recorded)."""
        entry = self._layer_entry(layer)
        try:
            seg = entry.segments[kind]
        except KeyError:
            raise ValidationError(
                f"unknown segment kind {kind!r}; expected one of {SEGMENT_KINDS}"
            ) from None
        data = self._source.read_at(seg.offset, seg.length)
        if verify and seg.crc32 is not None and zlib.crc32(data) != seg.crc32:
            raise DecompressionError(
                f"layer {layer!r} {kind} segment failed CRC32 verification "
                "(archive corrupted?)"
            )
        return data

    def read_layer(self, name: str, *, verify: bool = True) -> CompressedLayer:
        """Materialise one layer without touching any sibling segments."""
        entry = self._layer_entry(name)
        return CompressedLayer(
            name=entry.name,
            error_bound=entry.error_bound,
            shape=entry.shape,
            nnz=entry.nnz,
            entry_count=entry.entry_count,
            sz_payload=self.segment(name, "sz", verify=verify),
            index_payload=self.segment(name, "index", verify=verify),
            index_backend=entry.index_backend,
            data_codec=entry.data_codec,
        )

    def load_model(self, *, verify: bool = True) -> CompressedModel:
        """Materialise the whole :class:`CompressedModel` (every layer read)."""
        layers = {name: self.read_layer(name, verify=verify) for name in self.layer_names}
        return CompressedModel(
            network=self._manifest.network,
            layers=layers,
            expected_accuracy_loss=self._manifest.expected_accuracy_loss,
        )

    def verify(self) -> list[str]:
        """CRC-check every segment; returns the names of unverifiable
        (checksum-less, v1-era) segments instead of failing on them."""
        unverified: list[str] = []
        for name, entry in self._manifest.layers.items():
            for kind, seg in entry.segments.items():
                if seg.crc32 is None:
                    unverified.append(f"{name}/{kind}")
                else:
                    self.segment(name, kind, verify=True)
        return unverified

    def _layer_entry(self, name: str) -> LayerEntry:
        try:
            return self._manifest.layers[name]
        except KeyError:
            raise ValidationError(
                f"archive has no layer {name!r}; available: {self.layer_names}"
            ) from None

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._closer is not None:
                self._closer()

    def __enter__(self) -> "ModelArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ModelArchive v{self._version} network={self._manifest.network!r} "
            f"layers={len(self._manifest.layers)} bytes={self.size}>"
        )
