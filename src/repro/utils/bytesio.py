"""Framed binary container helpers.

Every serialised artifact in this repository (SZ streams, ZFP streams,
compressed-model containers, pruned-layer codecs) is built from the same two
primitives:

* a *frame*: a 4-byte little-endian length prefix followed by that many bytes;
* a *named section table*: a frame holding a UTF-8 JSON header that maps
  section names to lengths, followed by the section payloads in order.

Keeping the framing in one place means every format gets consistent
truncation / corruption detection for free.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Mapping

from repro.utils.errors import DecompressionError, ValidationError

__all__ = [
    "write_frame",
    "read_frame",
    "write_named_sections",
    "read_named_sections",
]

_LEN = struct.Struct("<Q")


def write_frame(stream: io.BufferedIOBase, payload: bytes) -> int:
    """Write a length-prefixed frame; returns the number of bytes written."""
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise ValidationError("frame payload must be bytes-like")
    header = _LEN.pack(len(payload))
    stream.write(header)
    stream.write(payload)
    return len(header) + len(payload)


def read_frame(stream: io.BufferedIOBase) -> bytes:
    """Read a frame written by :func:`write_frame`."""
    header = stream.read(_LEN.size)
    if len(header) != _LEN.size:
        raise DecompressionError("truncated frame header")
    (length,) = _LEN.unpack(header)
    payload = stream.read(length)
    if len(payload) != length:
        raise DecompressionError(
            f"truncated frame payload: expected {length} bytes, got {len(payload)}"
        )
    return payload


def write_named_sections(sections: Mapping[str, bytes], *, meta: dict | None = None) -> bytes:
    """Serialise named byte sections (plus an optional JSON metadata dict)."""
    for name, blob in sections.items():
        if not isinstance(blob, (bytes, bytearray, memoryview)):
            raise ValidationError(f"section {name!r} payload must be bytes-like")
    header = {
        "meta": meta or {},
        "sections": [[name, len(blob)] for name, blob in sections.items()],
    }
    buf = io.BytesIO()
    write_frame(buf, json.dumps(header, sort_keys=True).encode("utf-8"))
    for _, blob in sections.items():
        buf.write(bytes(blob))
    return buf.getvalue()


def read_named_sections(data: bytes) -> tuple[dict, dict[str, bytes]]:
    """Inverse of :func:`write_named_sections`; returns ``(meta, sections)``."""
    buf = io.BytesIO(data)
    try:
        header = json.loads(read_frame(buf).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecompressionError(f"corrupt section header: {exc}") from exc
    sections: dict[str, bytes] = {}
    for name, length in header.get("sections", []):
        blob = buf.read(length)
        if len(blob) != length:
            raise DecompressionError(f"truncated section {name!r}")
        sections[name] = blob
    return header.get("meta", {}), sections
