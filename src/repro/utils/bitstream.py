"""Vectorised bit-level I/O.

The SZ Huffman codec and the ZFP-style bit-plane coder both need to write and
read variable-length bit fields efficiently.  The writer keeps everything in
NumPy until the final ``tobytes`` call (per the vectorisation idiom of the
hpc-parallel guides: never touch individual bits from Python in a hot loop).

Two layers are provided:

* :func:`pack_bits` / :func:`unpack_bits` -- bulk conversion between a boolean
  bit array (MSB-first within each byte) and a ``bytes`` object.
* :class:`BitWriter` / :class:`BitReader` -- incremental interfaces used when
  a codec interleaves fields of different widths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.errors import DecompressionError, ValidationError

__all__ = ["pack_bits", "unpack_bits", "BitWriter", "BitReader"]


def pack_bits(bits: np.ndarray) -> bytes:
    """Pack a 1-D boolean/0-1 array into bytes (MSB-first), zero padded.

    Parameters
    ----------
    bits:
        1-D array of booleans or 0/1 integers.

    Returns
    -------
    bytes
        ``ceil(len(bits) / 8)`` bytes.  The number of valid bits must be
        carried out-of-band by the caller (every framed format in this repo
        stores the bit count in its header).
    """
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValidationError(f"pack_bits expects a 1-D array, got shape {arr.shape}")
    return np.packbits(arr.astype(np.uint8, copy=False)).tobytes()


def unpack_bits(data: bytes, nbits: int) -> np.ndarray:
    """Unpack bytes produced by :func:`pack_bits` back to a boolean array.

    Parameters
    ----------
    data:
        The packed byte string.
    nbits:
        Number of valid bits to return; must not exceed ``8 * len(data)``.
    """
    if nbits < 0:
        raise ValidationError("nbits must be non-negative")
    if nbits > 8 * len(data):
        raise DecompressionError(
            f"bitstream truncated: need {nbits} bits, have {8 * len(data)}"
        )
    raw = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(raw, count=nbits).astype(bool)


class BitWriter:
    """Accumulates bit fields and renders them to bytes.

    Fields are appended most-significant-bit first, matching the canonical
    Huffman convention.  Appending is buffered as (value, width) pairs and the
    expensive bit expansion happens once in :meth:`getvalue`, fully
    vectorised.
    """

    def __init__(self) -> None:
        self._values: list[int] = []
        self._widths: list[int] = []
        self._nbits = 0

    def __len__(self) -> int:
        return self._nbits

    @property
    def nbits(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def write(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` (MSB first)."""
        if width < 0:
            raise ValidationError("bit field width must be non-negative")
        if width == 0:
            return
        if value < 0 or value >= (1 << width):
            raise ValidationError(
                f"value {value} does not fit in {width} bits"
            )
        self._values.append(int(value))
        self._widths.append(int(width))
        self._nbits += width

    def write_array(self, values: np.ndarray, widths: np.ndarray | int) -> None:
        """Append many fields at once.

        ``widths`` may be a scalar (fixed-width fields) or an array of the
        same length as ``values``.
        """
        values = np.asarray(values, dtype=np.uint64).ravel()
        if np.isscalar(widths) or np.ndim(widths) == 0:
            widths_arr = np.full(values.shape, int(widths), dtype=np.int64)
        else:
            widths_arr = np.asarray(widths, dtype=np.int64).ravel()
            if widths_arr.shape != values.shape:
                raise ValidationError("values and widths must have equal length")
        if np.any(widths_arr < 0):
            raise ValidationError("bit field width must be non-negative")
        mask = widths_arr > 0
        if not np.all(
            values[mask] < (np.uint64(1) << widths_arr[mask].astype(np.uint64))
        ):
            raise ValidationError("a value does not fit in its declared width")
        self._values.extend(int(v) for v in values[mask])
        self._widths.extend(int(w) for w in widths_arr[mask])
        self._nbits += int(widths_arr[mask].sum())

    def bits(self) -> np.ndarray:
        """Return the accumulated bits as a boolean array (no padding)."""
        if not self._values:
            return np.zeros(0, dtype=bool)
        values = np.asarray(self._values, dtype=np.uint64)
        widths = np.asarray(self._widths, dtype=np.int64)
        maxw = int(widths.max())
        # Matrix of candidate bits, row i holds value i expanded MSB-first to
        # `maxw` columns but *right aligned*; selecting the last widths[i]
        # columns of each row yields the field bits in order.  Chunked so the
        # intermediate matrix never exceeds a few tens of megabytes.
        shifts = np.arange(maxw - 1, -1, -1, dtype=np.uint64)
        col = np.arange(maxw)
        chunk = max(1, (1 << 24) // max(1, maxw))
        pieces: list[np.ndarray] = []
        for start in range(0, values.size, chunk):
            vals = values[start : start + chunk]
            wids = widths[start : start + chunk]
            expanded = (vals[:, None] >> shifts[None, :]) & np.uint64(1)
            valid = col[None, :] >= (maxw - wids[:, None])
            pieces.append(expanded.astype(bool)[valid])
        return np.concatenate(pieces)

    def getvalue(self) -> bytes:
        """Return the packed byte string (zero padded to a byte boundary)."""
        return pack_bits(self.bits())


class BitReader:
    """Reads bit fields from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        if nbits is None:
            nbits = 8 * len(data)
        self._bits = unpack_bits(data, nbits)
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bits.size - self._pos

    def read(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise ValidationError("bit field width must be non-negative")
        if width == 0:
            return 0
        if self._pos + width > self._bits.size:
            raise DecompressionError("bitstream exhausted")
        chunk = self._bits[self._pos : self._pos + width]
        self._pos += width
        value = 0
        for b in chunk:
            value = (value << 1) | int(b)
        return value

    def read_array(self, count: int, width: int) -> np.ndarray:
        """Read ``count`` fixed-width fields as a uint64 array (vectorised)."""
        if count < 0 or width < 0:
            raise ValidationError("count and width must be non-negative")
        if width == 0:
            return np.zeros(count, dtype=np.uint64)
        total = count * width
        if self._pos + total > self._bits.size:
            raise DecompressionError("bitstream exhausted")
        chunk = self._bits[self._pos : self._pos + total].reshape(count, width)
        self._pos += total
        weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64))
        return (chunk.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)

    def read_remaining_bits(self) -> np.ndarray:
        """Return all unread bits as a boolean array and advance to the end."""
        out = self._bits[self._pos :].copy()
        self._pos = self._bits.size
        return out
