"""Wall-clock timing helpers used for the Figure 7 encode/decode breakdowns."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Timer", "TimingBreakdown"]


class Timer:
    """A simple start/stop wall-clock timer.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimingBreakdown:
    """Accumulates named timing phases (e.g. ``lossless``, ``sz``, ``csr``).

    Mirrors the decoding-time breakdown the paper reports in Figure 7b.
    """

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        return float(sum(self.phases.values()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        merged = TimingBreakdown(dict(self.phases))
        for name, seconds in other.phases.items():
            merged.add(name, seconds)
        return merged
