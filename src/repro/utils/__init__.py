"""Shared low-level utilities for the DeepSZ reproduction.

This package contains the pieces that every other subsystem leans on:

* :mod:`repro.utils.errors` -- the exception hierarchy.
* :mod:`repro.utils.bitstream` -- vectorised bit-level writer/reader used by
  the Huffman codec and the ZFP-style bit-plane coder.
* :mod:`repro.utils.bytesio` -- framed binary container helpers (length
  prefixed blobs, tagged sections) used by every on-disk format in the repo.
* :mod:`repro.utils.timing` -- lightweight wall-clock timers used by the
  benchmark harness and the Figure 7 breakdowns.
* :mod:`repro.utils.rng` -- deterministic random number helpers.
* :mod:`repro.utils.validation` -- argument checking helpers shared by the
  public API surfaces.
"""

from repro.utils.errors import (
    ReproError,
    CompressionError,
    DecompressionError,
    ConfigurationError,
    IntegrityError,
    ValidationError,
)
from repro.utils.bitstream import BitWriter, BitReader, pack_bits, unpack_bits
from repro.utils.bytesio import (
    write_frame,
    read_frame,
    write_named_sections,
    read_named_sections,
)
from repro.utils.timing import Timer, TimingBreakdown
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    require,
    check_positive,
    check_in_range,
    check_array_1d,
    check_finite,
    as_float32_1d,
)

__all__ = [
    "ReproError",
    "CompressionError",
    "DecompressionError",
    "ConfigurationError",
    "IntegrityError",
    "ValidationError",
    "BitWriter",
    "BitReader",
    "pack_bits",
    "unpack_bits",
    "write_frame",
    "read_frame",
    "write_named_sections",
    "read_named_sections",
    "Timer",
    "TimingBreakdown",
    "make_rng",
    "spawn_rngs",
    "require",
    "check_positive",
    "check_in_range",
    "check_array_1d",
    "check_finite",
    "as_float32_1d",
]
