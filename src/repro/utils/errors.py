"""Exception hierarchy used across the DeepSZ reproduction.

All library-raised exceptions derive from :class:`ReproError` so downstream
users can catch a single base class.  Subsystems raise the most specific
subclass that applies; plain ``ValueError``/``TypeError`` are reserved for
outright programmer errors detected by the validation helpers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, dtype, range, ...)."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent or unsupported."""


class CompressionError(ReproError, RuntimeError):
    """Compression failed (e.g. unencodable data, overflow in a codec stage)."""


class DecompressionError(ReproError, RuntimeError):
    """Decompression failed (corrupt stream, bad magic, truncated frame)."""


class IntegrityError(DecompressionError):
    """Stored bytes failed checksum / content-address verification.

    Subclasses :class:`DecompressionError` so existing corrupt-blob handling
    catches it; raised by the content-addressed store and archive readers."""


class GatewayOverloaded(ReproError, RuntimeError):
    """Admission control rejected a request because the target model's queue
    is full — the serving gateway's ``429 Too Many Requests``.

    Raised *synchronously* by :meth:`repro.serve.Gateway.submit` so callers
    can back off or shed load instead of piling latency onto a saturated
    model; :attr:`status_code` carries the HTTP-style code for front-ends
    that translate gateway errors into wire responses.

    When raised out of a batch admission call (``submit_many``),
    :attr:`admitted` holds the handles of the requests that *were* admitted
    before the rejection, so callers can drain them instead of leaking
    in-flight work."""

    status_code = 429

    #: Handles admitted before a mid-batch rejection (``submit_many``).
    admitted: tuple = ()


class DeadlineExceeded(ReproError, RuntimeError):
    """A request's deadline expired before the gateway produced its result.

    Raised by the async gateway when ``submit(..., deadline=)`` runs out of
    budget — while the request is still queued for a concurrency slot (the
    slot is released and the queue gauge decremented immediately) or while
    it is in service on a replica (the result, when it eventually lands, is
    discarded).  The HTTP-style analogue is a ``504 Gateway Timeout``."""

    status_code = 504


class ReplicaCrashed(ReproError, RuntimeError):
    """A process-backed replica died while requests were in flight.

    Raised into the futures of exactly the requests that were pending on
    the crashed worker — the gateway respawns the worker and later
    requests are unaffected, so callers should treat this as a retryable
    ``503``; :attr:`status_code` carries the HTTP-style code."""

    status_code = 503


class TrainingError(ReproError, RuntimeError):
    """Neural-network training diverged or was mis-configured."""


class OptimizationError(ReproError, RuntimeError):
    """The error-bound configuration optimizer could not find a feasible plan."""
