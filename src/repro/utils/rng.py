"""Deterministic random-number helpers.

Every stochastic component in the repository (dataset synthesis, weight
initialisation, SGD shuffling, Bloomier filter hashing fallbacks) accepts
either an integer seed or an existing :class:`numpy.random.Generator`.  These
helpers normalise that convention in one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]

DEFAULT_SEED = 20190622  # HPDC'19 opened on June 22, 2019.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to the library-wide default seed so that, absent explicit
    seeding, all experiments are still reproducible run-to-run.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed (for workers)."""
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
