"""Argument validation helpers shared by the public API surfaces."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.utils.errors import ValidationError

__all__ = [
    "require",
    "check_positive",
    "check_in_range",
    "check_array_1d",
    "check_finite",
    "as_float32_1d",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is strictly positive and return it as a float."""
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Ensure ``low <= value <= high`` and return ``value`` as a float."""
    value = float(value)
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_array_1d(array: Any, name: str) -> np.ndarray:
    """Coerce ``array`` to a 1-D ndarray, raising if it is not 1-D."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Ensure all elements are finite (compressors do not handle NaN/inf)."""
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def as_float32_1d(array: Any, name: str = "data") -> np.ndarray:
    """Return ``array`` flattened to a contiguous float32 1-D array.

    The paper compresses fc-layer weights as 1-D float32 arrays; this is the
    single normalisation point for that convention.
    """
    arr = np.ascontiguousarray(np.asarray(array, dtype=np.float32).ravel())
    return check_finite(arr, name)
