"""Prediction stage of the SZ pipeline.

SZ predicts each data point from its (already decompressed) neighbours and
entropy-codes the *prediction residual* rather than the value itself.  For
1-D data — which is what DeepSZ feeds SZ, because pruned fc-layer weights are
stored as 1-D ``data arrays`` — the best-fit predictor is the order-1 Lorenzo
predictor: "the previous decompressed value".

A key implementation observation (documented in the top-level DESIGN.md,
"Lorenzo prediction as integer first differences", and ablated in the
benchmark suite): when the quantizer snaps every value to the midpoint of a
``2 * eb`` grid, the decompressed previous value is exactly the grid value of
the previous point, so *Lorenzo prediction followed by residual quantization*
is identical to *value quantization followed by first differences of the
integer codes*.  The latter formulation is a single ``np.diff`` and therefore
fully vectorised, with no sequential dependency on the decompressed stream.

These functions operate on integer quantization codes (``int64``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["lorenzo_encode", "lorenzo_decode"]


def lorenzo_encode(codes: np.ndarray) -> np.ndarray:
    """First-difference transform of quantization codes.

    ``residual[0] = codes[0]`` (prediction of the first element is 0, SZ's
    convention) and ``residual[i] = codes[i] - codes[i-1]`` for ``i > 0``.
    """
    codes = np.asarray(codes)
    if codes.ndim != 1:
        raise ValidationError(f"codes must be 1-D, got shape {codes.shape}")
    if codes.size == 0:
        return codes.astype(np.int64, copy=True)
    codes = codes.astype(np.int64, copy=False)
    out = np.empty_like(codes)
    out[0] = codes[0]
    np.subtract(codes[1:], codes[:-1], out=out[1:])
    return out


def lorenzo_decode(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`lorenzo_encode` (a prefix sum)."""
    residuals = np.asarray(residuals)
    if residuals.ndim != 1:
        raise ValidationError(f"residuals must be 1-D, got shape {residuals.shape}")
    return np.cumsum(residuals.astype(np.int64, copy=False), dtype=np.int64)
