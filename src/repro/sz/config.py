"""Configuration objects for the SZ compressor.

The paper exercises SZ in absolute-error-bound mode (the error bounds that
Algorithm 1 sweeps are absolute), but SZ itself also supports value-range
relative bounds and PSNR targets ("our SZ compressor can control errors in
more sophisticated ways, such as relative error bound and peak signal-to-noise
ratio"), so all three modes are implemented.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["ErrorMode", "PredictorKind", "SZConfig"]


class ErrorMode(str, enum.Enum):
    """How the user expresses the error constraint."""

    ABS = "abs"  #: absolute error bound (paper default)
    REL = "rel"  #: value-range relative error bound
    PSNR = "psnr"  #: peak signal-to-noise ratio target in dB


class PredictorKind(str, enum.Enum):
    """Prediction scheme applied before quantization."""

    LORENZO = "lorenzo"  #: 1-D Lorenzo predictor on decompressed values
    ADAPTIVE = "adaptive"  #: per-block best fit of Lorenzo vs linear regression (SZ 2.x)
    NONE = "none"  #: direct quantization of values (ablation baseline)


@dataclass(frozen=True)
class SZConfig:
    """Immutable configuration for one SZ compression invocation.

    Parameters
    ----------
    error_bound:
        Meaning depends on :attr:`mode`: absolute bound (ABS), fraction of the
        value range (REL), or target PSNR in dB (PSNR).
    mode:
        Error-control mode.
    predictor:
        Prediction scheme.  The default is the SZ 2.x adaptive best-fit
        predictor (per-block choice between Lorenzo and linear regression),
        which is the configuration the paper's SZ library uses; plain Lorenzo
        and no-prediction are available for ablation.
    capacity:
        Number of quantization bins.  Codes outside ``[-capacity/2,
        capacity/2)`` are stored as unpredictable literals, exactly as SZ's
        "unpredictable data" path.
    lossless:
        Name of the lossless back end applied to the encoded payload; one of
        :func:`repro.sz.lossless.available_backends`, or ``"best"`` to try all
        of them and keep the smallest output (per-stream best-fit selection).
        The name is resolved against the codec registry at construction time,
        so a typo fails fast instead of at compression time.
    chunk_size:
        ``None`` (default) emits the monolithic v1 container.  An integer
        splits the array into independently compressed chunks of that many
        elements (the v2 container), each with its own Huffman table and
        outlier section, enabling parallel encode/decode.  Chunks in the low
        hundreds of thousands of elements amortise per-chunk headers while
        still exposing enough parallelism (see DESIGN.md).
    """

    error_bound: float = 1e-3
    mode: ErrorMode = ErrorMode.ABS
    predictor: PredictorKind = PredictorKind.ADAPTIVE
    capacity: int = 65536
    lossless: str = "zlib"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.error_bound, "error_bound")
        if not isinstance(self.mode, ErrorMode):
            object.__setattr__(self, "mode", ErrorMode(self.mode))
        if not isinstance(self.predictor, PredictorKind):
            object.__setattr__(self, "predictor", PredictorKind(self.predictor))
        if int(self.capacity) < 4:
            raise ConfigurationError("capacity must be at least 4 bins")
        if int(self.capacity) & 1:
            raise ConfigurationError("capacity must be even")
        object.__setattr__(self, "capacity", int(self.capacity))
        if self.chunk_size is not None:
            if int(self.chunk_size) < 1:
                raise ConfigurationError("chunk_size must be a positive element count")
            object.__setattr__(self, "chunk_size", int(self.chunk_size))
        # Resolve the lossless stage through the backend registry now rather
        # than failing deep inside a compression call.
        if self.lossless != "best":
            from repro.sz.lossless import get_backend

            get_backend(self.lossless)

    def with_error_bound(self, error_bound: float) -> "SZConfig":
        """Return a copy of this config with a different error bound."""
        return replace(self, error_bound=error_bound)

    def absolute_bound(self, data: np.ndarray) -> float:
        """Resolve the configured error target to an absolute bound for ``data``.

        * ABS  -- the bound itself.
        * REL  -- ``error_bound * (max(data) - min(data))``.
        * PSNR -- the absolute bound whose uniform quantization noise yields
          the requested PSNR: with error uniform in ``[-eb, eb]`` the RMSE is
          ``eb / sqrt(3)``, so ``eb = range * sqrt(3) * 10**(-psnr / 20)``.
        """
        if self.mode is ErrorMode.ABS:
            return float(self.error_bound)
        if data.size == 0:
            raise ConfigurationError(
                f"{self.mode.value} mode needs a non-empty array to resolve the bound"
            )
        value_range = float(np.max(data) - np.min(data))
        if value_range == 0.0:
            # Constant data: any positive bound preserves it exactly.
            return float(self.error_bound) if self.mode is ErrorMode.ABS else 1e-12
        if self.mode is ErrorMode.REL:
            return float(self.error_bound) * value_range
        # PSNR mode
        psnr = float(self.error_bound)
        return value_range * math.sqrt(3.0) * 10.0 ** (-psnr / 20.0)
