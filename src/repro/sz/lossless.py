"""Lossless back ends for the SZ pipeline and the DeepSZ index arrays.

The paper's Step 4 picks the best-fit lossless compressor (Gzip, Zstandard,
Blosc) for each index array and reports (Fig. 4) that Zstandard always wins.
Zstandard, Blosc and the original Gzip binary are not available offline, so
this module exposes the general-purpose byte compressors that ship with
CPython (zlib/"gzip", lzma, bz2) plus a trivial "store" codec, behind one
registry.  The *selection machinery* — try every registered codec, keep the
smallest output, record the winner — is exactly the paper's best-fit step and
is what the DeepSZ encoder calls.

For readability in tables, ``"gzip"`` is an alias of ``"zlib"`` and
``"zstd-like"`` is an alias of ``"lzma"`` (the strongest general-purpose codec
available offline, playing Zstandard's role of "the back end that wins").
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from repro.utils.errors import ConfigurationError, DecompressionError

__all__ = [
    "LosslessBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "best_fit_backend",
]


@dataclass(frozen=True)
class LosslessBackend:
    """A named lossless codec (compress / decompress byte transforms)."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]

    def ratio(self, data: bytes) -> float:
        """Compression ratio achieved on ``data`` (original / compressed)."""
        if len(data) == 0:
            return 1.0
        return len(data) / max(1, len(self.compress(data)))


_REGISTRY: Dict[str, LosslessBackend] = {}
_ALIASES: Dict[str, str] = {"gzip": "zlib", "zstd-like": "lzma", "blosc-like": "bz2"}

#: Callbacks invoked on every registration; the unified codec registry
#: (:mod:`repro.codecs.builtin`) installs one so backends registered at
#: runtime become visible there too.
_REGISTRATION_HOOKS: list = []


def add_registration_hook(hook, *, replay: bool = True) -> None:
    """Call ``hook(backend)`` for every future (and, with ``replay``, every
    already-registered) backend."""
    _REGISTRATION_HOOKS.append(hook)
    if replay:
        for backend in list(_REGISTRY.values()):
            hook(backend)


def register_backend(backend: LosslessBackend) -> None:
    """Register a lossless codec under its name (overwrites an existing one)."""
    _REGISTRY[backend.name] = backend
    for hook in _REGISTRATION_HOOKS:
        hook(backend)


def available_backends() -> list[str]:
    """Names of all registered codecs (aliases excluded)."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> LosslessBackend:
    """Look up a codec by name or alias."""
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown lossless backend {name!r}; available: {available_backends()}"
        ) from None


def best_fit_backend(data: bytes, candidates: Iterable[str] | None = None) -> tuple[LosslessBackend, bytes]:
    """Try every candidate codec on ``data`` and return the smallest result.

    This is the paper's best-fit lossless selection (Step 4 / Fig. 4).
    Returns the winning backend and its compressed output.
    """
    names = list(candidates) if candidates is not None else available_backends()
    if not names:
        raise ConfigurationError("no lossless backends to choose from")
    best: tuple[LosslessBackend, bytes] | None = None
    for name in names:
        backend = get_backend(name)
        out = backend.compress(data)
        if best is None or len(out) < len(best[1]):
            best = (backend, out)
    assert best is not None
    return best


def _lzma_compress(data: bytes) -> bytes:
    return lzma.compress(data, preset=6)


def _lzma_decompress(data: bytes) -> bytes:
    try:
        return lzma.decompress(data)
    except lzma.LZMAError as exc:
        raise DecompressionError(f"lzma stream corrupt: {exc}") from exc


def _zlib_compress(data: bytes) -> bytes:
    return zlib.compress(data, level=6)


def _zlib_decompress(data: bytes) -> bytes:
    try:
        return zlib.decompress(data)
    except zlib.error as exc:
        raise DecompressionError(f"zlib stream corrupt: {exc}") from exc


def _bz2_compress(data: bytes) -> bytes:
    return bz2.compress(data, compresslevel=9)


def _bz2_decompress(data: bytes) -> bytes:
    try:
        return bz2.decompress(data)
    except (OSError, ValueError) as exc:
        raise DecompressionError(f"bz2 stream corrupt: {exc}") from exc


def _identity(data: bytes) -> bytes:
    # Module-level (not a lambda) so store backends pickle into pool workers.
    return data


register_backend(LosslessBackend("store", _identity, _identity))
register_backend(LosslessBackend("zlib", _zlib_compress, _zlib_decompress))
register_backend(LosslessBackend("lzma", _lzma_compress, _lzma_decompress))
register_backend(LosslessBackend("bz2", _bz2_compress, _bz2_decompress))
