"""Canonical Huffman codec for SZ quantization codes.

SZ applies a "customised Huffman encoding" to the stream of quantization
codes.  This module implements a canonical Huffman codec whose encoded form
carries only the (symbol, code-length) table — the actual codes are
reconstructed canonically on both sides, which keeps the header small and the
decoder deterministic.

Encoding is fully vectorised (the per-symbol bit expansion happens inside
NumPy); decoding walks the bitstream with a compact two-level lookup table so
that the common short codes are resolved in a single table probe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.bitstream import pack_bits, unpack_bits
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import CompressionError, DecompressionError, ValidationError

__all__ = ["HuffmanCodec", "HuffmanTable"]

_FAST_BITS = 12  # size of the first-level decode table (4096 entries)


@dataclass(frozen=True)
class HuffmanTable:
    """Canonical Huffman table: symbols and their code lengths.

    ``symbols`` are the distinct source symbols in canonical order (sorted by
    (length, symbol)); ``lengths`` are the corresponding code lengths.
    """

    symbols: np.ndarray  # int64, canonical order
    lengths: np.ndarray  # uint8, same order

    def __post_init__(self) -> None:
        if self.symbols.shape != self.lengths.shape:
            raise ValidationError("symbols and lengths must have equal length")

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def codes(self) -> np.ndarray:
        """Canonical code values (uint64), aligned with :attr:`symbols`."""
        if self.symbols.size == 0:
            return np.zeros(0, dtype=np.uint64)
        codes = np.zeros(self.symbols.size, dtype=np.uint64)
        code = 0
        prev_len = int(self.lengths[0])
        for i in range(self.symbols.size):
            length = int(self.lengths[i])
            code <<= length - prev_len
            codes[i] = code
            code += 1
            prev_len = length
        return codes


def _code_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths for ``symbols`` with frequencies ``counts``."""
    n = symbols.size
    if n == 1:
        return np.array([1], dtype=np.uint8)
    # Standard heap-based Huffman; the alphabet is at most `capacity` symbols
    # (a few thousand in practice), so a Python heap is not a hot path.
    heap: list[tuple[int, int, list[int]]] = [
        (int(c), i, [i]) for i, c in enumerate(counts)
    ]
    heapq.heapify(heap)
    lengths = np.zeros(n, dtype=np.int64)
    tie = n
    while len(heap) > 1:
        c1, _, leaves1 = heapq.heappop(heap)
        c2, _, leaves2 = heapq.heappop(heap)
        merged = leaves1 + leaves2
        lengths[merged] += 1
        heapq.heappush(heap, (c1 + c2, tie, merged))
        tie += 1
    if np.any(lengths > 64):
        raise CompressionError("Huffman code length exceeds 64 bits")
    return lengths.astype(np.uint8)


class HuffmanCodec:
    """Encode / decode an integer symbol stream with canonical Huffman codes."""

    # -- encoding --------------------------------------------------------
    def encode(self, data: np.ndarray) -> bytes:
        """Encode a 1-D integer array into a self-describing byte string."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValidationError(f"data must be 1-D, got shape {data.shape}")
        data = data.astype(np.int64, copy=False)
        n = int(data.size)
        if n == 0:
            return write_named_sections(
                {"table_symbols": b"", "table_lengths": b"", "payload": b""},
                meta={"count": 0, "nbits": 0},
            )

        symbols, inverse, counts = np.unique(
            data, return_inverse=True, return_counts=True
        )
        lengths = _code_lengths(symbols, counts)
        # Canonical ordering: by (length, symbol value).
        order = np.lexsort((symbols, lengths))
        table = HuffmanTable(symbols=symbols[order], lengths=lengths[order])
        codes = table.codes()

        # Map each input position to its canonical table slot.
        slot_of_unique = np.empty(symbols.size, dtype=np.int64)
        slot_of_unique[order] = np.arange(symbols.size)
        slots = slot_of_unique[inverse]

        code_vals = codes[slots]
        code_lens = table.lengths[slots].astype(np.int64)

        # Vectorised variable-length bit packing: expand every code to
        # `max_length` right-aligned bits, then keep only the valid ones.
        # Chunked so the intermediate (chunk x max_length) matrix stays small.
        maxw = table.max_length
        shifts = np.arange(maxw - 1, -1, -1, dtype=np.uint64)
        col = np.arange(maxw)
        chunk = 1 << 18
        pieces: list[np.ndarray] = []
        for start in range(0, n, chunk):
            vals = code_vals[start : start + chunk]
            lens = code_lens[start : start + chunk]
            bits_matrix = (vals[:, None] >> shifts[None, :]) & np.uint64(1)
            valid = col[None, :] >= (maxw - lens[:, None])
            pieces.append(bits_matrix.astype(bool)[valid])
        bits = np.concatenate(pieces) if pieces else np.zeros(0, dtype=bool)
        payload = pack_bits(bits)

        return write_named_sections(
            {
                "table_symbols": table.symbols.astype("<i8").tobytes(),
                "table_lengths": table.lengths.astype(np.uint8).tobytes(),
                "payload": payload,
            },
            meta={"count": n, "nbits": int(bits.size)},
        )

    # -- decoding --------------------------------------------------------
    def decode(self, blob: bytes) -> np.ndarray:
        """Decode a byte string produced by :meth:`encode`."""
        meta, sections = read_named_sections(blob)
        count = int(meta.get("count", 0))
        nbits = int(meta.get("nbits", 0))
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        symbols = np.frombuffer(sections["table_symbols"], dtype="<i8").astype(np.int64)
        lengths = np.frombuffer(sections["table_lengths"], dtype=np.uint8)
        if symbols.size != lengths.size or symbols.size == 0:
            raise DecompressionError("corrupt Huffman table")
        table = HuffmanTable(symbols=symbols, lengths=lengths)
        bits = unpack_bits(sections["payload"], nbits)
        return self._decode_bits(bits, table, count)

    @staticmethod
    def _decode_bits(bits: np.ndarray, table: HuffmanTable, count: int) -> np.ndarray:
        codes = table.codes()
        lengths = table.lengths.astype(np.int64)
        symbols = table.symbols
        max_len = table.max_length

        if symbols.size == 1:
            # Degenerate single-symbol alphabet: every element is that symbol.
            return np.full(count, symbols[0], dtype=np.int64)

        # Two-level decode table: fast table indexed by the next _FAST_BITS
        # bits for codes short enough, a (length, code) dict fallback for the
        # long tail.
        fast_bits = min(_FAST_BITS, max_len)
        fast_symbol = np.full(1 << fast_bits, -1, dtype=np.int64)
        fast_length = np.zeros(1 << fast_bits, dtype=np.int64)
        slow: dict[tuple[int, int], int] = {}
        for i in range(symbols.size):
            length = int(lengths[i])
            code = int(codes[i])
            if length <= fast_bits:
                start = code << (fast_bits - length)
                span = 1 << (fast_bits - length)
                fast_symbol[start : start + span] = symbols[i]
                fast_length[start : start + span] = length
            else:
                slow[(length, code)] = int(symbols[i])

        out = np.empty(count, dtype=np.int64)
        nbits = int(bits.size)
        # Precompute, for every bit offset, the integer value of the next
        # `fast_bits` bits (zero padded past the end).  This turns the decode
        # loop into one table probe per symbol instead of a per-bit inner loop.
        padded = np.concatenate([bits.astype(np.uint8), np.zeros(fast_bits, dtype=np.uint8)])
        windows_view = np.lib.stride_tricks.sliding_window_view(padded, fast_bits)[:nbits]
        weights = (1 << np.arange(fast_bits - 1, -1, -1)).astype(np.int64)
        windows = (windows_view.astype(np.int64) @ weights).tolist()

        bit_list = bits.astype(np.uint8).tolist()
        pos = 0
        fast_symbol_l = fast_symbol.tolist()
        fast_length_l = fast_length.tolist()
        for i in range(count):
            if pos >= nbits:
                raise DecompressionError("Huffman bitstream exhausted")
            window = windows[pos]
            length = fast_length_l[window]
            if length:
                out[i] = fast_symbol_l[window]
                pos += length
                continue
            # Slow path: extend one bit at a time beyond the fast-table width.
            prefix = window
            length = fast_bits
            while True:
                length += 1
                if length > 64 or pos + length > nbits:
                    raise DecompressionError("invalid Huffman code in stream")
                prefix = (prefix << 1) | bit_list[pos + length - 1]
                sym = slow.get((length, prefix))
                if sym is not None:
                    out[i] = sym
                    pos += length
                    break
        if pos > nbits:
            raise DecompressionError("Huffman bitstream overrun")
        return out
