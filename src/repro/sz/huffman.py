"""Canonical Huffman codec for SZ quantization codes.

SZ applies a "customised Huffman encoding" to the stream of quantization
codes.  This module implements a canonical Huffman codec whose encoded form
carries only the (symbol, code-length) table — the actual codes are
reconstructed canonically on both sides, which keeps the header small and the
decoder deterministic.

Encoding is fully vectorised (the per-symbol bit expansion happens inside
NumPy); decoding walks the bitstream with a compact two-level lookup table so
that the common short codes are resolved in a single table probe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.bitstream import pack_bits, unpack_bits
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import CompressionError, DecompressionError, ValidationError

__all__ = ["HuffmanCodec", "HuffmanTable"]

_FAST_BITS = 12  # size of the first-level decode table (4096 entries)


@dataclass(frozen=True)
class HuffmanTable:
    """Canonical Huffman table: symbols and their code lengths.

    ``symbols`` are the distinct source symbols in canonical order (sorted by
    (length, symbol)); ``lengths`` are the corresponding code lengths.
    """

    symbols: np.ndarray  # int64, canonical order
    lengths: np.ndarray  # uint8, same order

    def __post_init__(self) -> None:
        if self.symbols.shape != self.lengths.shape:
            raise ValidationError("symbols and lengths must have equal length")

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def codes(self) -> np.ndarray:
        """Canonical code values (uint64), aligned with :attr:`symbols`."""
        if self.symbols.size == 0:
            return np.zeros(0, dtype=np.uint64)
        codes = np.zeros(self.symbols.size, dtype=np.uint64)
        code = 0
        prev_len = int(self.lengths[0])
        for i in range(self.symbols.size):
            length = int(self.lengths[i])
            code <<= length - prev_len
            codes[i] = code
            code += 1
            prev_len = length
        return codes


def _code_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths for ``symbols`` with frequencies ``counts``."""
    n = symbols.size
    if n == 1:
        return np.array([1], dtype=np.uint8)
    # Standard heap-based Huffman; the alphabet is at most `capacity` symbols
    # (a few thousand in practice), so a Python heap is not a hot path.
    heap: list[tuple[int, int, list[int]]] = [
        (int(c), i, [i]) for i, c in enumerate(counts)
    ]
    heapq.heapify(heap)
    lengths = np.zeros(n, dtype=np.int64)
    tie = n
    while len(heap) > 1:
        c1, _, leaves1 = heapq.heappop(heap)
        c2, _, leaves2 = heapq.heappop(heap)
        merged = leaves1 + leaves2
        lengths[merged] += 1
        heapq.heappush(heap, (c1 + c2, tie, merged))
        tie += 1
    if np.any(lengths > 64):
        raise CompressionError("Huffman code length exceeds 64 bits")
    return lengths.astype(np.uint8)


class HuffmanCodec:
    """Encode / decode an integer symbol stream with canonical Huffman codes."""

    # -- encoding --------------------------------------------------------
    def encode(self, data: np.ndarray) -> bytes:
        """Encode a 1-D integer array into a self-describing byte string."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValidationError(f"data must be 1-D, got shape {data.shape}")
        data = data.astype(np.int64, copy=False)
        n = int(data.size)
        if n == 0:
            return write_named_sections(
                {"table_symbols": b"", "table_lengths": b"", "payload": b""},
                meta={"count": 0, "nbits": 0},
            )

        symbols, inverse, counts = np.unique(
            data, return_inverse=True, return_counts=True
        )
        lengths = _code_lengths(symbols, counts)
        # Canonical ordering: by (length, symbol value).
        order = np.lexsort((symbols, lengths))
        table = HuffmanTable(symbols=symbols[order], lengths=lengths[order])
        codes = table.codes()

        # Map each input position to its canonical table slot.
        slot_of_unique = np.empty(symbols.size, dtype=np.int64)
        slot_of_unique[order] = np.arange(symbols.size)
        slots = slot_of_unique[inverse]

        code_vals = codes[slots]
        code_lens = table.lengths[slots].astype(np.int64)

        # Vectorised variable-length bit packing: expand every code to
        # `max_length` right-aligned bits, then keep only the valid ones.
        # Chunked so the intermediate (chunk x max_length) matrix stays small.
        maxw = table.max_length
        shifts = np.arange(maxw - 1, -1, -1, dtype=np.uint64)
        col = np.arange(maxw)
        chunk = 1 << 18
        pieces: list[np.ndarray] = []
        for start in range(0, n, chunk):
            vals = code_vals[start : start + chunk]
            lens = code_lens[start : start + chunk]
            bits_matrix = (vals[:, None] >> shifts[None, :]) & np.uint64(1)
            valid = col[None, :] >= (maxw - lens[:, None])
            pieces.append(bits_matrix.astype(bool)[valid])
        bits = np.concatenate(pieces) if pieces else np.zeros(0, dtype=bool)
        payload = pack_bits(bits)

        return write_named_sections(
            {
                "table_symbols": table.symbols.astype("<i8").tobytes(),
                "table_lengths": table.lengths.astype(np.uint8).tobytes(),
                "payload": payload,
            },
            meta={"count": n, "nbits": int(bits.size)},
        )

    # -- decoding --------------------------------------------------------
    def decode(self, blob: bytes) -> np.ndarray:
        """Decode a byte string produced by :meth:`encode`."""
        meta, sections = read_named_sections(blob)
        count = int(meta.get("count", 0))
        nbits = int(meta.get("nbits", 0))
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        symbols = np.frombuffer(sections["table_symbols"], dtype="<i8").astype(np.int64)
        lengths = np.frombuffer(sections["table_lengths"], dtype=np.uint8)
        if symbols.size != lengths.size or symbols.size == 0:
            raise DecompressionError("corrupt Huffman table")
        table = HuffmanTable(symbols=symbols, lengths=lengths)
        bits = unpack_bits(sections["payload"], nbits)
        return self._decode_bits(bits, table, count)

    #: Symbols decoded per anchor in the lockstep phase of :meth:`_decode_bits`.
    _CHAIN_STRIDE = 32

    @staticmethod
    def _decode_bits(bits: np.ndarray, table: HuffmanTable, count: int) -> np.ndarray:
        """Batched NumPy table-probe decode.

        The decode problem is a chain walk — ``pos[i+1] = pos[i] +
        code_length_at(pos[i])`` — whose per-symbol Python loop (plus the
        ``.tolist()`` materialisation of the whole bitstream) used to dominate
        decompression time.  The batched kernel instead:

        1. computes the value of the next ``fast_bits`` bits at *every* bit
           offset with ``fast_bits`` shifted vector adds,
        2. probes the fast table for all offsets in one gather, decoding every
           symbol whose fast-table probe hits in one vectorised round,
        3. resolves the rare offsets whose code is longer than ``fast_bits``
           with one vectorised canonical-range test per extra bit of length
           (the only remaining loop is over code *lengths*, not symbols),
        4. extracts the chain of actually-visited offsets from the jump table
           ``jump[p] = p + length[p]``: five doublings build a 32-step jump
           table, a scalar walk places one anchor per 32 symbols, and the 32
           symbols after every anchor are gathered in vectorised lockstep,
        5. gathers the output symbols at the visited offsets.

        See DESIGN.md ("Vectorised Huffman decode") for the full derivation.
        """
        codes = table.codes()
        lengths = table.lengths.astype(np.int64)
        symbols = table.symbols
        max_len = table.max_length

        if symbols.size == 1:
            # Degenerate single-symbol alphabet: every element is that symbol.
            return np.full(count, symbols[0], dtype=np.int64)
        if count == 0:
            return np.zeros(0, dtype=np.int64)

        nbits = int(bits.size)
        if nbits == 0:
            raise DecompressionError("Huffman bitstream exhausted")

        # First level: fast table indexed by the next `fast_bits` bits,
        # mapping to the canonical table slot and the code length.
        fast_bits = min(_FAST_BITS, max_len)
        fast_slot = np.full(1 << fast_bits, -1, dtype=np.int32)
        fast_length = np.zeros(1 << fast_bits, dtype=np.int32)
        for i in range(symbols.size):
            length = int(lengths[i])
            if length <= fast_bits:
                code = int(codes[i])
                start = code << (fast_bits - length)
                span = 1 << (fast_bits - length)
                fast_slot[start : start + span] = i
                fast_length[start : start + span] = length

        # Zero padding past the stream end; codes speculatively matched inside
        # the padding are rejected by the final overrun check.
        padded = np.zeros(nbits + max(fast_bits, max_len), dtype=np.int32)
        padded[:nbits] = bits

        # window[p] = integer value of the fast_bits bits starting at p.
        window = np.zeros(nbits, dtype=np.int32)
        for k in range(fast_bits):
            window <<= 1
            window += padded[k : k + nbits]

        slot_at = fast_slot[window]
        len_at = fast_length[window]

        if max_len > fast_bits:
            # Second level: canonical-range resolution for long codes, applied
            # only at offsets whose fast probe missed.  Canonical codes of one
            # length occupy a contiguous value range [first, first + count),
            # and the l-bit prefix of any longer canonical code compares
            # strictly greater, so the range test is exact.
            miss = np.nonzero(len_at == 0)[0]
            if miss.size:
                first_code = np.zeros(max_len + 1, dtype=np.int64)
                code_count = np.zeros(max_len + 1, dtype=np.int64)
                slot_base = np.zeros(max_len + 1, dtype=np.int64)
                for i in range(symbols.size):
                    length = int(lengths[i])
                    if length > fast_bits:
                        if code_count[length] == 0:
                            first_code[length] = int(codes[i])
                            slot_base[length] = i
                        code_count[length] += 1

                value = window[miss].astype(np.int64)
                unresolved = np.ones(miss.size, dtype=bool)
                for length in range(fast_bits + 1, max_len + 1):
                    value <<= 1
                    value += padded[miss + (length - 1)]
                    if code_count[length] == 0:
                        continue
                    hit = (
                        unresolved
                        & (value >= first_code[length])
                        & (value < first_code[length] + code_count[length])
                    )
                    if np.any(hit):
                        slot_at[miss[hit]] = slot_base[length] + (
                            value[hit] - first_code[length]
                        )
                        len_at[miss[hit]] = length
                        unresolved &= ~hit
        del window

        # Jump table: jump[p] = p + len_at[p]; offsets carrying no valid code
        # jump straight to the absorbing `nbits` sentinel.  int32 positions
        # halve gather traffic; fall back to int64 near the int32 limit.
        pos_dtype = np.int32 if nbits < 2**31 - 128 else np.int64
        jump = np.empty(nbits + 1, dtype=pos_dtype)
        jump[nbits] = nbits
        body = np.arange(nbits, dtype=pos_dtype)
        body += len_at
        np.minimum(body, nbits, out=body)
        jump[:nbits] = np.where(len_at > 0, body, body.dtype.type(nbits))
        del body

        # Chain extraction: five doublings build a 32-step jump table, a
        # scalar walk drops one anchor every 32 symbols, and the lockstep
        # phase advances all anchors together one symbol per round.
        stride = HuffmanCodec._CHAIN_STRIDE
        n_anchor = (count + stride - 1) // stride
        anchors = np.zeros(n_anchor, dtype=pos_dtype)
        if n_anchor > 1:
            doublings = max(1, (stride - 1).bit_length())
            # Each doubling squares the step count, so anchors land exactly
            # one lane row apart only when the stride is a power of two.
            assert (1 << doublings) == stride, "_CHAIN_STRIDE must be a power of two"
            hop = jump
            for _ in range(doublings):
                hop = hop[hop]
            a = pos_dtype(0)
            for i in range(1, n_anchor):
                a = hop[a]
                anchors[i] = a
        lanes = np.empty((n_anchor, stride), dtype=pos_dtype)
        p = anchors
        for r in range(stride):
            lanes[:, r] = p
            p = jump[p]
        positions = lanes.reshape(-1)[:count]

        last = int(positions[-1])
        if last >= nbits:
            # The chain ran off the end: either the stream is short or it hit
            # an offset with no valid code and stuck at the sentinel.
            reached = positions[positions < nbits]
            if reached.size and np.any(slot_at[reached] < 0):
                raise DecompressionError("invalid Huffman code in stream")
            raise DecompressionError("Huffman bitstream exhausted")
        slots = slot_at[positions]
        if np.any(slots < 0):
            raise DecompressionError("invalid Huffman code in stream")
        if last + int(len_at[last]) > nbits:
            raise DecompressionError("Huffman bitstream overrun")
        return symbols[slots]

    @staticmethod
    def _decode_bits_reference(
        bits: np.ndarray, table: HuffmanTable, count: int
    ) -> np.ndarray:
        """Scalar reference decoder (the pre-vectorisation algorithm).

        Kept for differential testing of :meth:`_decode_bits`; not used on the
        decode hot path.
        """
        codes = table.codes()
        lengths = table.lengths.astype(np.int64)
        symbols = table.symbols
        if symbols.size == 1:
            return np.full(count, symbols[0], dtype=np.int64)
        by_code: dict[tuple[int, int], int] = {
            (int(lengths[i]), int(codes[i])): int(symbols[i])
            for i in range(symbols.size)
        }
        out = np.empty(count, dtype=np.int64)
        bit_list = bits.astype(np.uint8).tolist()
        nbits = len(bit_list)
        pos = 0
        for i in range(count):
            if pos >= nbits:
                raise DecompressionError("Huffman bitstream exhausted")
            prefix = 0
            length = 0
            while True:
                length += 1
                if length > 64 or pos + length > nbits:
                    raise DecompressionError("invalid Huffman code in stream")
                prefix = (prefix << 1) | bit_list[pos + length - 1]
                sym = by_code.get((length, prefix))
                if sym is not None:
                    out[i] = sym
                    pos += length
                    break
        if pos > nbits:
            raise DecompressionError("Huffman bitstream overrun")
        return out
