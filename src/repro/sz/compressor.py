"""The SZ compressor pipeline for 1-D floating point arrays.

Compression stages (Section 2.2 / 3.3 of the paper):

1. resolve the error constraint to an absolute bound,
2. error-controlled linear-scaling quantization (:class:`LinearQuantizer`),
3. 1-D Lorenzo prediction of the quantization codes (:func:`lorenzo_encode`),
4. canonical Huffman coding of the residual codes (:class:`HuffmanCodec`),
5. a lossless back end over the whole payload (:mod:`repro.sz.lossless`).

The decompressor inverts the stages and reconstructs a float32 array whose
element-wise error is bounded by the absolute error bound (outliers are
reconstructed exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sz.config import ErrorMode, PredictorKind, SZConfig
from repro.sz.huffman import HuffmanCodec
from repro.sz.lossless import best_fit_backend, get_backend
from repro.sz.predictor import lorenzo_decode, lorenzo_encode
from repro.sz.quantizer import LinearQuantizer
from repro.sz.regression import AdaptivePrediction, adaptive_decode, adaptive_encode
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError
from repro.utils.validation import as_float32_1d

__all__ = ["SZCompressionResult", "SZCompressor", "compress", "decompress"]

_MAGIC = "repro-sz-v1"


@dataclass(frozen=True)
class SZCompressionResult:
    """Outcome of one SZ compression call.

    Attributes
    ----------
    payload:
        The self-describing compressed byte string.
    original_bytes / compressed_bytes:
        Sizes before and after compression.
    absolute_bound:
        The absolute error bound that was actually enforced (after resolving
        REL / PSNR modes).
    lossless_backend:
        Name of the lossless codec used for the final stage.
    outlier_count:
        Number of values stored verbatim through the unpredictable path.
    """

    payload: bytes
    original_bytes: int
    compressed_bytes: int
    absolute_bound: float
    lossless_backend: str
    outlier_count: int

    @property
    def ratio(self) -> float:
        """Compression ratio (original size / compressed size)."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bits_per_value(self) -> float:
        """Average encoded bits per original value."""
        count = self.original_bytes // 4
        if count == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / count


class SZCompressor:
    """Error-bounded lossy compressor for 1-D float arrays (SZ reimplementation)."""

    def __init__(self, config: SZConfig | None = None) -> None:
        self.config = config or SZConfig()
        self._huffman = HuffmanCodec()

    # -- compression ------------------------------------------------------
    def compress(self, data: np.ndarray) -> SZCompressionResult:
        """Compress ``data`` under the configured error constraint."""
        data = as_float32_1d(data)
        cfg = self.config
        abs_bound = cfg.absolute_bound(data)

        quantizer = LinearQuantizer(abs_bound, capacity=cfg.capacity)
        qr = quantizer.quantize(data)

        extra_sections: dict[str, bytes] = {}
        extra_meta: dict[str, object] = {}
        if cfg.predictor is PredictorKind.LORENZO:
            residuals = lorenzo_encode(qr.codes)
        elif cfg.predictor is PredictorKind.ADAPTIVE:
            prediction = adaptive_encode(qr.codes)
            residuals = prediction.residuals
            extra_sections["block_modes"] = prediction.modes.astype(np.uint8).tobytes()
            extra_sections["block_coeffs"] = prediction.coefficients.astype("<f4").tobytes()
            extra_meta["block_size"] = int(prediction.block_size)
            extra_meta["num_blocks"] = int(prediction.num_blocks)
        else:
            residuals = qr.codes

        encoded = self._huffman.encode(residuals)
        sections = {
            "huffman": encoded,
            "outlier_mask": np.packbits(qr.outlier_mask).tobytes() if qr.outlier_count else b"",
            "outliers": qr.outliers.astype("<f4").tobytes(),
            **extra_sections,
        }
        meta = {
            "magic": _MAGIC,
            "count": int(data.size),
            "abs_bound": float(abs_bound),
            "predictor": cfg.predictor.value,
            "capacity": int(cfg.capacity),
            "outlier_count": int(qr.outlier_count),
            **extra_meta,
        }
        raw_payload = write_named_sections(sections, meta=meta)

        if cfg.lossless == "best":
            backend, compressed = best_fit_backend(raw_payload)
            backend_name = backend.name
        else:
            backend = get_backend(cfg.lossless)
            compressed = backend.compress(raw_payload)
            backend_name = backend.name

        final = write_named_sections(
            {"body": compressed}, meta={"magic": _MAGIC, "lossless": backend_name}
        )
        return SZCompressionResult(
            payload=final,
            original_bytes=int(data.size) * 4,
            compressed_bytes=len(final),
            absolute_bound=float(abs_bound),
            lossless_backend=backend_name,
            outlier_count=int(qr.outlier_count),
        )

    # -- decompression ----------------------------------------------------
    def decompress(self, payload: bytes) -> np.ndarray:
        """Reconstruct the float32 array from a compressed payload."""
        outer_meta, outer_sections = read_named_sections(payload)
        if outer_meta.get("magic") != _MAGIC:
            raise DecompressionError("not an SZ payload (bad magic)")
        backend = get_backend(outer_meta["lossless"])
        raw_payload = backend.decompress(outer_sections["body"])

        meta, sections = read_named_sections(raw_payload)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("corrupt SZ payload (inner magic mismatch)")
        count = int(meta["count"])
        abs_bound = float(meta["abs_bound"])
        predictor = PredictorKind(meta["predictor"])
        capacity = int(meta["capacity"])
        outlier_count = int(meta["outlier_count"])

        residuals = self._huffman.decode(sections["huffman"])
        if residuals.size != count:
            raise DecompressionError(
                f"decoded {residuals.size} codes, expected {count}"
            )
        if predictor is PredictorKind.LORENZO:
            codes = lorenzo_decode(residuals)
        elif predictor is PredictorKind.ADAPTIVE:
            num_blocks = int(meta["num_blocks"])
            modes = np.frombuffer(sections["block_modes"], dtype=np.uint8)
            if modes.size != num_blocks:
                raise DecompressionError("adaptive block mode table is corrupt")
            coeffs = np.frombuffer(sections["block_coeffs"], dtype="<f4").reshape(-1, 2)
            codes = adaptive_decode(
                AdaptivePrediction(
                    residuals=residuals,
                    modes=modes,
                    coefficients=coeffs.astype(np.float32),
                    block_size=int(meta["block_size"]),
                    count=count,
                )
            )
        else:
            codes = residuals

        if outlier_count:
            mask_bits = np.unpackbits(
                np.frombuffer(sections["outlier_mask"], dtype=np.uint8), count=count
            ).astype(bool)
            outliers = np.frombuffer(sections["outliers"], dtype="<f4").astype(np.float32)
            if int(mask_bits.sum()) != outlier_count or outliers.size != outlier_count:
                raise DecompressionError("outlier bookkeeping mismatch in SZ payload")
        else:
            mask_bits = None
            outliers = None

        quantizer = LinearQuantizer(abs_bound, capacity=capacity)
        return quantizer.dequantize(codes, mask_bits, outliers)


def compress(data: np.ndarray, error_bound: float = 1e-3, **kwargs) -> SZCompressionResult:
    """Convenience wrapper: compress with an absolute error bound."""
    cfg = SZConfig(error_bound=error_bound, **kwargs)
    return SZCompressor(cfg).compress(data)


def decompress(payload: bytes) -> np.ndarray:
    """Convenience wrapper: decompress an SZ payload."""
    return SZCompressor().decompress(payload)
