"""The SZ compressor pipeline for 1-D floating point arrays.

Compression stages (Section 2.2 / 3.3 of the paper):

1. resolve the error constraint to an absolute bound,
2. error-controlled linear-scaling quantization (:class:`LinearQuantizer`),
3. 1-D Lorenzo prediction of the quantization codes (:func:`lorenzo_encode`),
4. canonical Huffman coding of the residual codes (:class:`HuffmanCodec`),
5. a lossless back end over the whole payload (:mod:`repro.sz.lossless`).

The decompressor inverts the stages and reconstructs a float32 array whose
element-wise error is bounded by the absolute error bound (outliers are
reconstructed exactly).

Containers
----------
Two container formats are produced (see DESIGN.md for the byte layout):

* **v1** (``chunk_size=None``, the default): the whole array is one
  monolithic stream — header, Huffman body, outlier section, all wrapped in
  one lossless pass.  Byte-identical to the historical format.
* **v2** (``chunk_size=N``): the array is split into independently
  compressed chunks of ``N`` elements.  Every chunk carries its own Huffman
  table and outlier section and is losslessly compressed on its own, so
  chunks can be encoded **and** decoded concurrently; the outer header holds
  the chunk index (per-chunk byte extents, element counts and lossless
  backends).  The error bound is resolved *once* against the full array
  (REL / PSNR modes see the global value range), so the reconstruction is
  identical to the v1 path.

``compress(..., workers=k)`` / ``decompress(..., workers=k)`` fan chunk
work out on a :class:`repro.parallel.pool.TaskPool`; ``workers=1`` runs the
same per-chunk code serially and produces bit-identical payloads.  v1
payloads remain decodable forever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import profile
from repro.parallel.pool import TaskPool
from repro.sz.config import PredictorKind, SZConfig
from repro.sz.huffman import HuffmanCodec
from repro.sz.lossless import best_fit_backend, get_backend
from repro.sz.predictor import lorenzo_decode, lorenzo_encode
from repro.sz.quantizer import LinearQuantizer
from repro.sz.regression import AdaptivePrediction, adaptive_decode, adaptive_encode
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError
from repro.utils.validation import as_float32_1d

__all__ = ["SZCompressionResult", "SZCompressor", "compress", "decompress"]

_MAGIC = "repro-sz-v1"
_MAGIC_V2 = "repro-sz-v2"


@dataclass(frozen=True)
class SZCompressionResult:
    """Outcome of one SZ compression call.

    Attributes
    ----------
    payload:
        The self-describing compressed byte string.
    original_bytes / compressed_bytes:
        Sizes before and after compression.
    absolute_bound:
        The absolute error bound that was actually enforced (after resolving
        REL / PSNR modes).
    lossless_backend:
        Name of the lossless codec used for the final stage (``"mixed"``
        when a chunked payload's best-fit selection picked different winners
        for different chunks).
    outlier_count:
        Number of values stored verbatim through the unpredictable path.
    num_chunks:
        Number of independently compressed chunks: 1 for a v1 payload,
        and for v2 exactly the container header's ``num_chunks`` (0 for an
        empty array).
    """

    payload: bytes
    original_bytes: int
    compressed_bytes: int
    absolute_bound: float
    lossless_backend: str
    outlier_count: int
    num_chunks: int = 1

    @property
    def ratio(self) -> float:
        """Compression ratio (original size / compressed size)."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def bits_per_value(self) -> float:
        """Average encoded bits per original value."""
        count = self.original_bytes // 4
        if count == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / count


def _encode_raw(data: np.ndarray, abs_bound: float, cfg: SZConfig) -> tuple[bytes, int]:
    """Quantize + predict + Huffman-code one array into a raw inner payload.

    Returns ``(raw_payload, outlier_count)``.  The raw payload is the
    pre-lossless stream shared by the v1 body and every v2 chunk.
    """
    quantizer = LinearQuantizer(abs_bound, capacity=cfg.capacity)
    qr = quantizer.quantize(data)

    extra_sections: dict[str, bytes] = {}
    extra_meta: dict[str, object] = {}
    if cfg.predictor is PredictorKind.LORENZO:
        residuals = lorenzo_encode(qr.codes)
    elif cfg.predictor is PredictorKind.ADAPTIVE:
        prediction = adaptive_encode(qr.codes)
        residuals = prediction.residuals
        extra_sections["block_modes"] = prediction.modes.astype(np.uint8).tobytes()
        extra_sections["block_coeffs"] = prediction.coefficients.astype("<f4").tobytes()
        extra_meta["block_size"] = int(prediction.block_size)
        extra_meta["num_blocks"] = int(prediction.num_blocks)
    else:
        residuals = qr.codes

    encoded = HuffmanCodec().encode(residuals)
    sections = {
        "huffman": encoded,
        "outlier_mask": np.packbits(qr.outlier_mask).tobytes() if qr.outlier_count else b"",
        "outliers": qr.outliers.astype("<f4").tobytes(),
        **extra_sections,
    }
    meta = {
        "magic": _MAGIC,
        "count": int(data.size),
        "abs_bound": float(abs_bound),
        "predictor": cfg.predictor.value,
        "capacity": int(cfg.capacity),
        "outlier_count": int(qr.outlier_count),
        **extra_meta,
    }
    return write_named_sections(sections, meta=meta), int(qr.outlier_count)


def _decode_raw(raw_payload: bytes) -> np.ndarray:
    """Inverse of :func:`_encode_raw`."""
    meta, sections = read_named_sections(raw_payload)
    if meta.get("magic") != _MAGIC:
        raise DecompressionError("corrupt SZ payload (inner magic mismatch)")
    count = int(meta["count"])
    abs_bound = float(meta["abs_bound"])
    predictor = PredictorKind(meta["predictor"])
    capacity = int(meta["capacity"])
    outlier_count = int(meta["outlier_count"])

    with profile.stage("huffman"):
        residuals = HuffmanCodec().decode(sections["huffman"])
    if residuals.size != count:
        raise DecompressionError(f"decoded {residuals.size} codes, expected {count}")
    if predictor is PredictorKind.LORENZO:
        with profile.stage("predictor"):
            codes = lorenzo_decode(residuals)
    elif predictor is PredictorKind.ADAPTIVE:
        num_blocks = int(meta["num_blocks"])
        modes = np.frombuffer(sections["block_modes"], dtype=np.uint8)
        if modes.size != num_blocks:
            raise DecompressionError("adaptive block mode table is corrupt")
        coeffs = np.frombuffer(sections["block_coeffs"], dtype="<f4").reshape(-1, 2)
        with profile.stage("predictor"):
            codes = adaptive_decode(
                AdaptivePrediction(
                    residuals=residuals,
                    modes=modes,
                    coefficients=coeffs.astype(np.float32),
                    block_size=int(meta["block_size"]),
                    count=count,
                )
            )
    else:
        codes = residuals

    if outlier_count:
        mask_bits = np.unpackbits(
            np.frombuffer(sections["outlier_mask"], dtype=np.uint8), count=count
        ).astype(bool)
        outliers = np.frombuffer(sections["outliers"], dtype="<f4").astype(np.float32)
        if int(mask_bits.sum()) != outlier_count or outliers.size != outlier_count:
            raise DecompressionError("outlier bookkeeping mismatch in SZ payload")
    else:
        mask_bits = None
        outliers = None

    quantizer = LinearQuantizer(abs_bound, capacity=capacity)
    with profile.stage("dequantize"):
        return quantizer.dequantize(codes, mask_bits, outliers)


def _apply_lossless(raw_payload: bytes, lossless: str) -> tuple[bytes, str]:
    """Run the configured lossless stage; returns (compressed, backend name)."""
    if lossless == "best":
        backend, compressed = best_fit_backend(raw_payload)
    else:
        backend = get_backend(lossless)
        compressed = backend.compress(raw_payload)
    return compressed, backend.name


def _encode_chunk_task(args: tuple[np.ndarray, float, SZConfig]) -> tuple[bytes, str, int]:
    """Pool task: encode one chunk to its lossless-compressed payload."""
    chunk, abs_bound, cfg = args
    raw, outlier_count = _encode_raw(chunk, abs_bound, cfg)
    compressed, backend_name = _apply_lossless(raw, cfg.lossless)
    return compressed, backend_name, outlier_count


def _decode_chunk_task(args: tuple[bytes, str]) -> np.ndarray:
    """Pool task: decode one lossless-compressed chunk payload."""
    blob, backend_name = args
    with profile.stage("lossless"):
        raw = get_backend(backend_name).decompress(blob)
    return _decode_raw(raw)


class SZCompressor:
    """Error-bounded lossy compressor for 1-D float arrays (SZ reimplementation)."""

    def __init__(self, config: SZConfig | None = None) -> None:
        self.config = config or SZConfig()

    # -- compression ------------------------------------------------------
    def compress(self, data: np.ndarray, *, workers: int = 1) -> SZCompressionResult:
        """Compress ``data`` under the configured error constraint.

        ``workers`` parallelises chunk encoding for v2 (chunked) payloads;
        the payload bytes are identical for every worker count.
        """
        data = as_float32_1d(data)
        cfg = self.config
        abs_bound = cfg.absolute_bound(data)
        if cfg.chunk_size is not None:
            return self._compress_chunked(data, abs_bound, workers)

        raw_payload, outlier_count = _encode_raw(data, abs_bound, cfg)
        compressed, backend_name = _apply_lossless(raw_payload, cfg.lossless)
        final = write_named_sections(
            {"body": compressed}, meta={"magic": _MAGIC, "lossless": backend_name}
        )
        return SZCompressionResult(
            payload=final,
            original_bytes=int(data.size) * 4,
            compressed_bytes=len(final),
            absolute_bound=float(abs_bound),
            lossless_backend=backend_name,
            outlier_count=outlier_count,
        )

    def _compress_chunked(
        self, data: np.ndarray, abs_bound: float, workers: int
    ) -> SZCompressionResult:
        cfg = self.config
        chunk_size = int(cfg.chunk_size)  # type: ignore[arg-type]
        n = int(data.size)
        num_chunks = -(-n // chunk_size) if n else 0
        tasks = [
            (data[i * chunk_size : (i + 1) * chunk_size], abs_bound, cfg)
            for i in range(num_chunks)
        ]
        results = TaskPool(workers).map(_encode_chunk_task, tasks)

        sections = {f"chunk/{i}": payload for i, (payload, _, _) in enumerate(results)}
        chunk_counts = [int(task[0].size) for task in tasks]
        backends = [backend for _, backend, _ in results]
        outlier_count = sum(outliers for _, _, outliers in results)
        meta = {
            "magic": _MAGIC_V2,
            "count": n,
            "abs_bound": float(abs_bound),
            "chunk_size": chunk_size,
            "num_chunks": num_chunks,
            "chunk_counts": chunk_counts,
            "lossless": backends,
            "outlier_count": int(outlier_count),
        }
        final = write_named_sections(sections, meta=meta)
        distinct = sorted(set(backends))
        return SZCompressionResult(
            payload=final,
            original_bytes=n * 4,
            compressed_bytes=len(final),
            absolute_bound=float(abs_bound),
            lossless_backend=(
                distinct[0] if len(distinct) == 1 else "mixed" if distinct else cfg.lossless
            ),
            outlier_count=int(outlier_count),
            num_chunks=num_chunks,
        )

    # -- decompression ----------------------------------------------------
    def decompress(self, payload: bytes, *, workers: int = 1) -> np.ndarray:
        """Reconstruct the float32 array from a compressed payload.

        Both container formats are accepted: the monolithic v1 stream and
        the chunked v2 stream (whose chunks are decoded on ``workers``
        parallel workers).
        """
        outer_meta, outer_sections = read_named_sections(payload)
        magic = outer_meta.get("magic")
        if magic == _MAGIC_V2:
            return self._decompress_chunked(outer_meta, outer_sections, workers)
        if magic != _MAGIC:
            raise DecompressionError("not an SZ payload (bad magic)")
        backend = get_backend(outer_meta["lossless"])
        with profile.stage("lossless"):
            raw_payload = backend.decompress(outer_sections["body"])
        return _decode_raw(raw_payload)

    def _decompress_chunked(
        self, meta: dict, sections: dict[str, bytes], workers: int
    ) -> np.ndarray:
        count = int(meta["count"])
        num_chunks = int(meta["num_chunks"])
        chunk_counts = [int(c) for c in meta.get("chunk_counts", [])]
        backends = meta.get("lossless", [])
        if len(chunk_counts) != num_chunks or len(backends) != num_chunks:
            raise DecompressionError("corrupt SZ v2 chunk index")
        if sum(chunk_counts) != count:
            raise DecompressionError("SZ v2 chunk index does not cover the array")
        tasks = []
        for i in range(num_chunks):
            blob = sections.get(f"chunk/{i}")
            if blob is None:
                raise DecompressionError(f"SZ v2 payload is missing chunk {i}")
            tasks.append((blob, str(backends[i])))
        chunks = TaskPool(workers).map(_decode_chunk_task, tasks)
        for i, chunk in enumerate(chunks):
            if chunk.size != chunk_counts[i]:
                raise DecompressionError(
                    f"chunk {i} decoded {chunk.size} values, expected {chunk_counts[i]}"
                )
        if not chunks:
            return np.zeros(0, dtype=np.float32)
        return np.concatenate(chunks)


def compress(
    data: np.ndarray, error_bound: float = 1e-3, *, workers: int = 1, **kwargs
) -> SZCompressionResult:
    """Convenience wrapper: compress with an absolute error bound."""
    cfg = SZConfig(error_bound=error_bound, **kwargs)
    return SZCompressor(cfg).compress(data, workers=workers)


def decompress(payload: bytes, *, workers: int = 1) -> np.ndarray:
    """Convenience wrapper: decompress an SZ payload."""
    return SZCompressor().decompress(payload, workers=workers)
