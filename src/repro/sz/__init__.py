"""SZ error-bounded lossy compressor, reimplemented from scratch.

This package reproduces the SZ pipeline the paper relies on (Tao et al.
IPDPS'17, Liang et al. 2018, Di & Cappello IPDPS'16) for 1-D floating point
arrays, which is exactly the shape of the pruned fc-layer ``data arrays``
DeepSZ compresses:

1. **Prediction** -- a 1-D Lorenzo predictor operating on *decompressed*
   values (equivalently: first differences of the quantization codes), with a
   no-prediction mode available for ablation (:mod:`repro.sz.predictor`).
2. **Error-controlled linear-scaling quantization** -- every value is mapped
   to an integer code on a ``2 * error_bound`` grid; codes that fall outside
   the quantizer capacity are stored verbatim as "unpredictable" literals
   (:mod:`repro.sz.quantizer`).
3. **Customised Huffman coding** of the quantization codes
   (:mod:`repro.sz.huffman`).
4. **Lossless back end** (zlib / lzma / bz2 / store) applied to the encoded
   payload (:mod:`repro.sz.lossless`).

Two container formats are emitted: the monolithic v1 stream and, when
``SZConfig.chunk_size`` is set, the chunked v2 container whose chunks are
independently compressed (own Huffman table + outlier section) and therefore
encode/decode in parallel through :class:`repro.parallel.TaskPool` — see the
top-level DESIGN.md for byte layouts.

The public entry points are :class:`repro.sz.SZCompressor` and the
convenience functions :func:`repro.sz.compress` / :func:`repro.sz.decompress`.
"""

from repro.sz.config import ErrorMode, PredictorKind, SZConfig
from repro.sz.compressor import SZCompressor, SZCompressionResult, compress, decompress
from repro.sz.huffman import HuffmanCodec
from repro.sz.lossless import (
    LosslessBackend,
    available_backends,
    get_backend,
    best_fit_backend,
)
from repro.sz.quantizer import LinearQuantizer, QuantizationResult
from repro.sz.predictor import lorenzo_encode, lorenzo_decode
from repro.sz.regression import (
    AdaptivePrediction,
    adaptive_encode,
    adaptive_decode,
    DEFAULT_BLOCK_SIZE,
)

__all__ = [
    "ErrorMode",
    "PredictorKind",
    "SZConfig",
    "SZCompressor",
    "SZCompressionResult",
    "compress",
    "decompress",
    "HuffmanCodec",
    "LosslessBackend",
    "available_backends",
    "get_backend",
    "best_fit_backend",
    "LinearQuantizer",
    "QuantizationResult",
    "lorenzo_encode",
    "lorenzo_decode",
    "AdaptivePrediction",
    "adaptive_encode",
    "adaptive_decode",
    "DEFAULT_BLOCK_SIZE",
]
