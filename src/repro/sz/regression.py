"""Adaptive best-fit prediction: per-block choice of predictor.

SZ 2.x (Liang et al. 2018) predicts each block of data with whichever
predictor fits better: the Lorenzo predictor (previous decompressed value) or
a linear-regression predictor fitted to the block.  The paper describes this
"adaptive, best-fit prediction method" as part of the SZ framework DeepSZ
builds on, so it is available here as ``PredictorKind.ADAPTIVE``; a third
per-block candidate — direct quantization with no prediction — is added
because it is the best fit for uncorrelated fc-layer weights (see the
predictor ablation benchmark).

The adaptive scheme operates on the integer quantization codes:

* the data is split into blocks of ``block_size`` codes;
* for every block three candidate residual streams are formed —

  - **Lorenzo**: first differences, with the block's first element predicted
    from the last code of the *previous* block so that no per-block absolute
    restart value pollutes the symbol alphabet,
  - **regression**: ``code[i] - round(a + b * i)`` with ``(a, b)`` the
    float32 least-squares fit of the block's codes against their positions,
  - **direct**: the codes themselves (prediction of zero) — free of side
    information, and the best choice on uncorrelated, noise-like weight data
    where differencing only inflates the residual entropy;

* the predictor with the smallest estimated entropy-coded size wins the block;
* the outputs are the concatenated residual stream (entropy-coded by the
  caller), one mode byte per block, and the ``(a, b)`` pairs of the
  regression blocks.

Everything is exactly invertible: the decoder recomputes ``round(a + b * i)``
from the stored float32 coefficients, so encoder and decoder agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import DecompressionError, ValidationError

__all__ = [
    "AdaptivePrediction",
    "adaptive_encode",
    "adaptive_decode",
    "DEFAULT_BLOCK_SIZE",
    "MODE_LORENZO",
    "MODE_REGRESSION",
    "MODE_DIRECT",
]

DEFAULT_BLOCK_SIZE = 256

#: Per-block predictor identifiers stored in :attr:`AdaptivePrediction.modes`.
MODE_LORENZO = 0
MODE_REGRESSION = 1
MODE_DIRECT = 2


@dataclass(frozen=True)
class AdaptivePrediction:
    """Encoder output of the adaptive predictor."""

    residuals: np.ndarray  #: int64, same length as the input codes
    modes: np.ndarray  #: uint8, one MODE_* value per block
    coefficients: np.ndarray  #: float32, shape (num_regression_blocks, 2)
    block_size: int
    count: int  #: number of codes

    @property
    def num_blocks(self) -> int:
        return int(self.modes.size)

    @property
    def regression_fraction(self) -> float:
        """Fraction of blocks won by the regression predictor."""
        if self.modes.size == 0:
            return 0.0
        return float((self.modes == MODE_REGRESSION).mean())

    @property
    def mode_fractions(self) -> dict:
        """Fraction of blocks per predictor mode (diagnostics / ablations)."""
        if self.modes.size == 0:
            return {"lorenzo": 0.0, "regression": 0.0, "direct": 0.0}
        return {
            "lorenzo": float((self.modes == MODE_LORENZO).mean()),
            "regression": float((self.modes == MODE_REGRESSION).mean()),
            "direct": float((self.modes == MODE_DIRECT).mean()),
        }


def _pad_to_blocks(codes: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape to (nblocks, block_size), padding the tail by repeating the last code."""
    n = codes.size
    nblocks = (n + block_size - 1) // block_size
    padded = np.empty(nblocks * block_size, dtype=np.int64)
    padded[:n] = codes
    if n:
        padded[n:] = codes[-1]
    else:
        padded[:] = 0
    return padded.reshape(nblocks, block_size)


def _lorenzo_residuals(blocks: np.ndarray) -> np.ndarray:
    """First differences; each block's first element is predicted from the
    last code of the previous block (0 for the very first block)."""
    out = np.empty_like(blocks)
    out[1:, 0] = blocks[1:, 0] - blocks[:-1, -1]
    out[0, 0] = blocks[0, 0]
    np.subtract(blocks[:, 1:], blocks[:, :-1], out=out[:, 1:])
    return out


def _regression_fit(blocks: np.ndarray) -> np.ndarray:
    """Least-squares (intercept, slope) per block, stored as float32."""
    nblocks, bs = blocks.shape
    idx = np.arange(bs, dtype=np.float64)
    x_mean = idx.mean()
    x_var = ((idx - x_mean) ** 2).sum()
    y = blocks.astype(np.float64)
    y_mean = y.mean(axis=1)
    slope = ((idx - x_mean)[None, :] * (y - y_mean[:, None])).sum(axis=1) / x_var
    intercept = y_mean - slope * x_mean
    return np.stack([intercept, slope], axis=1).astype(np.float32)


def _regression_predict(coeffs: np.ndarray, block_size: int) -> np.ndarray:
    """Integer predictions round(a + b*i) for each block; float32 arithmetic."""
    idx = np.arange(block_size, dtype=np.float32)
    pred = coeffs[:, 0:1].astype(np.float32) + coeffs[:, 1:2].astype(np.float32) * idx[None, :]
    return np.rint(pred.astype(np.float64)).astype(np.int64)


def adaptive_encode(codes: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> AdaptivePrediction:
    """Run the per-block best-fit prediction over a 1-D code array."""
    codes = np.asarray(codes)
    if codes.ndim != 1:
        raise ValidationError(f"codes must be 1-D, got shape {codes.shape}")
    if block_size < 4:
        raise ValidationError("block_size must be at least 4")
    codes = codes.astype(np.int64, copy=False)
    n = int(codes.size)
    if n == 0:
        return AdaptivePrediction(
            residuals=np.zeros(0, dtype=np.int64),
            modes=np.zeros(0, dtype=np.uint8),
            coefficients=np.zeros((0, 2), dtype=np.float32),
            block_size=block_size,
            count=0,
        )

    blocks = _pad_to_blocks(codes, block_size)
    lorenzo = _lorenzo_residuals(blocks)
    coeffs_all = _regression_fit(blocks)
    regression = blocks - _regression_predict(coeffs_all, block_size)

    # Cost proxy: an estimate of the entropy-coded size in bits.  A residual
    # of magnitude m costs roughly log2(1 + m) bits under the Huffman coder
    # (small residuals are nearly free, large ones cost their magnitude's bit
    # width), which — unlike a plain absolute sum — correctly prefers a
    # highly skewed difference distribution over a flatter but smaller-sum
    # one.  The regression predictor additionally pays for its two float32
    # coefficients; they cost 64 bits on the wire but are charged double so
    # that regression only wins a block when its advantage is clear (the
    # estimate ignores the cost of widening the shared Huffman alphabet).
    lorenzo_cost = np.log2(1.0 + np.abs(lorenzo)).sum(axis=1)
    regression_cost = np.log2(1.0 + np.abs(regression)).sum(axis=1) + 128.0
    direct_cost = np.log2(1.0 + np.abs(blocks)).sum(axis=1)
    costs = np.stack([lorenzo_cost, regression_cost, direct_cost], axis=1)
    modes = costs.argmin(axis=1).astype(np.uint8)

    residual_blocks = np.where(
        (modes == MODE_REGRESSION)[:, None],
        regression,
        np.where((modes == MODE_DIRECT)[:, None], blocks, lorenzo),
    )
    residuals = residual_blocks.reshape(-1)[:n].copy()
    coefficients = coeffs_all[modes == MODE_REGRESSION].copy()
    return AdaptivePrediction(
        residuals=residuals,
        modes=modes,
        coefficients=coefficients,
        block_size=block_size,
        count=n,
    )


def adaptive_decode(prediction: AdaptivePrediction) -> np.ndarray:
    """Reconstruct the quantization codes from an :class:`AdaptivePrediction`."""
    n = prediction.count
    bs = prediction.block_size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    residuals = np.asarray(prediction.residuals, dtype=np.int64)
    if residuals.size != n:
        raise DecompressionError("residual stream length does not match the code count")
    nblocks = (n + bs - 1) // bs
    modes = np.asarray(prediction.modes, dtype=np.uint8)
    if modes.size != nblocks:
        raise DecompressionError("block mode count does not match the block count")
    if modes.size and int(modes.max()) > MODE_DIRECT:
        raise DecompressionError("unknown predictor mode in the adaptive stream")
    if int((modes == MODE_REGRESSION).sum()) != prediction.coefficients.shape[0]:
        raise DecompressionError("regression coefficient count does not match the block modes")

    padded = np.zeros(nblocks * bs, dtype=np.int64)
    padded[:n] = residuals
    if n and n < nblocks * bs:
        # Reproduce the encoder's tail padding (repeat of the last code) so the
        # final block's prefix sums see the same values the encoder used.
        padded[n:] = 0
    blocks = padded.reshape(nblocks, bs)

    regression_mask = modes == MODE_REGRESSION
    preds = None
    if regression_mask.any():
        preds = _regression_predict(
            np.asarray(prediction.coefficients, dtype=np.float32), bs
        )
    out = np.empty_like(blocks)
    # Blocks decode in order: Lorenzo blocks chain off the last code of the
    # previous block; regression and direct blocks are absolute.
    prev_last = np.int64(0)
    reg_idx = 0
    for b in range(nblocks):
        mode = int(modes[b])
        if mode == MODE_LORENZO:
            out[b] = np.cumsum(blocks[b]) + prev_last
        elif mode == MODE_REGRESSION:
            out[b] = blocks[b] + preds[reg_idx]
            reg_idx += 1
        else:  # MODE_DIRECT
            out[b] = blocks[b]
        prev_last = out[b, -1]
    return out.reshape(-1)[:n].copy()
