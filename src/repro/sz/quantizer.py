"""Error-controlled linear-scaling quantization.

The quantizer maps every floating point value ``x`` to the integer code
``round(x / (2 * eb))``; reconstructing ``code * 2 * eb`` guarantees
``|x - x'| <= eb`` in double precision (the float32 cast of the output can add
at most half a ULP of the reconstructed value on top of that, which only
matters for values quantized exactly at a bin boundary).  Codes whose magnitude exceeds the quantizer capacity are
flagged "unpredictable" and their original float32 value is stored verbatim
(so the error bound is trivially respected for them as well) — this mirrors
SZ's unpredictable-data handling and keeps the Huffman alphabet bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import CompressionError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["QuantizationResult", "LinearQuantizer"]


@dataclass(frozen=True)
class QuantizationResult:
    """Output of :meth:`LinearQuantizer.quantize`.

    Attributes
    ----------
    codes:
        ``int64`` quantization codes, one per input element.  At positions
        where :attr:`outlier_mask` is true the code still holds the value's
        grid index (used by the Lorenzo prediction chain) but the decoder
        reconstructs those positions from :attr:`outliers` instead.
    outlier_mask:
        Boolean array marking unpredictable values.
    outliers:
        float32 array of the unpredictable values, in positional order.
    """

    codes: np.ndarray
    outlier_mask: np.ndarray
    outliers: np.ndarray

    @property
    def outlier_count(self) -> int:
        return int(self.outliers.size)


class LinearQuantizer:
    """Linear-scaling quantizer with a fixed absolute error bound.

    Parameters
    ----------
    error_bound:
        Absolute error bound ``eb``; reconstruction error of every
        non-outlier element is at most ``eb`` (outliers are exact).
    capacity:
        Number of representable codes.  Values whose grid index lies outside
        ``[-capacity // 2, capacity // 2)`` are treated as outliers.
    """

    def __init__(self, error_bound: float, capacity: int = 65536) -> None:
        self.error_bound = check_positive(error_bound, "error_bound")
        if capacity < 4 or capacity % 2:
            raise ValidationError("capacity must be an even integer >= 4")
        self.capacity = int(capacity)
        self._step = 2.0 * self.error_bound

    # -- encode ----------------------------------------------------------
    def quantize(self, data: np.ndarray) -> QuantizationResult:
        """Quantize a 1-D float array."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 1:
            raise ValidationError(f"data must be 1-D, got shape {data.shape}")
        if data.size == 0:
            return QuantizationResult(
                codes=np.zeros(0, dtype=np.int64),
                outlier_mask=np.zeros(0, dtype=bool),
                outliers=np.zeros(0, dtype=np.float32),
            )
        codes = np.rint(data / self._step)
        if np.any(np.abs(codes) > 2**62):
            raise CompressionError(
                "quantization codes overflow int64; error bound too small for the data range"
            )
        codes = codes.astype(np.int64)
        half = self.capacity // 2
        outlier_mask = (codes < -half) | (codes >= half)
        outliers = data[outlier_mask].astype(np.float32)
        return QuantizationResult(codes=codes, outlier_mask=outlier_mask, outliers=outliers)

    # -- decode ----------------------------------------------------------
    def dequantize(
        self,
        codes: np.ndarray,
        outlier_mask: np.ndarray | None = None,
        outliers: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reconstruct float32 values from codes (+ optional outlier literals)."""
        codes = np.asarray(codes, dtype=np.int64)
        values = codes.astype(np.float64) * self._step
        if outlier_mask is not None and outliers is not None and outliers.size:
            outlier_mask = np.asarray(outlier_mask, dtype=bool)
            if int(outlier_mask.sum()) != int(np.asarray(outliers).size):
                raise ValidationError(
                    "outlier mask population does not match outlier literal count"
                )
            values[outlier_mask] = np.asarray(outliers, dtype=np.float64)
        return values.astype(np.float32)

    def reconstruction_error(self, original: np.ndarray, reconstructed: np.ndarray) -> float:
        """Maximum absolute reconstruction error (for verification)."""
        original = np.asarray(original, dtype=np.float64)
        reconstructed = np.asarray(reconstructed, dtype=np.float64)
        if original.shape != reconstructed.shape:
            raise ValidationError("original and reconstructed shapes differ")
        if original.size == 0:
            return 0.0
        return float(np.max(np.abs(original - reconstructed)))
