"""Process-pool execution of error-bound assessment tests.

Each task is one (layer, error bound) candidate evaluation: compress the
layer's data array with SZ, decompress, rebuild the dense weights, run the
forward pass, report (accuracy, compressed size).  Tasks share large
read-only state (the network parameters, the test set, the sparse layers),
which is shipped to every worker once through the pool initializer rather
than per task.

The default worker count comes from :func:`repro.parallel.pool.resolve_workers`:
the ``REPRO_WORKERS`` environment variable when set, otherwise the machine's
full ``os.cpu_count()`` (the historical ``min(4, cpu_count - 1)`` default
silently capped big machines at four workers).

On platforms or environments where spawning processes is undesirable (or when
``workers=1``), everything degrades to a serial loop with identical results.

.. note::
   This is the PR-1 batch harness: a fixed task list, process pools, state
   shipped via initializer.  The *adaptive* Algorithm 1 sweep now lives in
   :class:`repro.core.assess_parallel.AssessmentEngine` (thread pool,
   activation reuse, speculation, persistent caching), which is what
   ``assess_network`` uses by default; this module remains for callers that
   already hold an explicit candidate list and want process isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.assessment import AssessmentConfig, AssessmentPoint, evaluate_candidate
from repro.nn.network import Network
from repro.parallel.pool import TaskPool
from repro.pruning.sparse_format import SparseLayer
from repro.utils.errors import ValidationError

__all__ = ["AssessmentTask", "ParallelAssessment", "run_tasks_serial"]


@dataclass(frozen=True)
class AssessmentTask:
    """One candidate evaluation: a layer name and an error bound."""

    layer: str
    error_bound: float


# Worker-process globals, populated by _init_worker.
_WORKER_STATE: dict = {}


def _init_worker(state_blob: dict) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE.update(state_blob)


def _run_task(task: AssessmentTask) -> Tuple[str, float, float, int]:
    network: Network = _WORKER_STATE["network"]
    sparse_layers: Dict[str, SparseLayer] = _WORKER_STATE["sparse_layers"]
    config: AssessmentConfig = _WORKER_STATE["config"]
    accuracy, size = evaluate_candidate(
        network,
        task.layer,
        sparse_layers[task.layer],
        task.error_bound,
        _WORKER_STATE["test_images"],
        _WORKER_STATE["test_labels"],
        config=config,
    )
    return task.layer, task.error_bound, accuracy, size


def run_tasks_serial(
    network: Network,
    sparse_layers: Dict[str, SparseLayer],
    test_images: np.ndarray,
    test_labels: np.ndarray,
    tasks: Sequence[AssessmentTask],
    config: AssessmentConfig | None = None,
) -> List[Tuple[str, float, float, int]]:
    """Evaluate tasks one after another in the current process."""
    config = config or AssessmentConfig()
    results = []
    for task in tasks:
        accuracy, size = evaluate_candidate(
            network,
            task.layer,
            sparse_layers[task.layer],
            task.error_bound,
            test_images,
            test_labels,
            config=config,
        )
        results.append((task.layer, task.error_bound, accuracy, size))
    return results


class ParallelAssessment:
    """Evaluate a batch of (layer, error bound) candidates on a process pool."""

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and int(workers) < 1:
            raise ValidationError("workers must be >= 1")
        self._pool = TaskPool(workers)
        self.workers = self._pool.workers

    def run(
        self,
        network: Network,
        sparse_layers: Dict[str, SparseLayer],
        test_images: np.ndarray,
        test_labels: np.ndarray,
        tasks: Sequence[AssessmentTask],
        config: AssessmentConfig | None = None,
    ) -> List[Tuple[str, float, float, int]]:
        """Evaluate every task; results preserve the task order."""
        config = config or AssessmentConfig()
        if self.workers == 1 or len(tasks) <= 1:
            return run_tasks_serial(
                network, sparse_layers, test_images, test_labels, tasks, config
            )
        state = {
            "network": network,
            "sparse_layers": dict(sparse_layers),
            "test_images": test_images,
            "test_labels": test_labels,
            "config": config,
        }
        try:
            return self._pool.map(
                _run_task, tasks, initializer=_init_worker, initargs=(state,)
            )
        finally:
            # The serial fallback runs the initializer in this process; clear
            # the module global so the network and test set stay collectable.
            _WORKER_STATE.clear()

    def assessment_points(
        self,
        baseline_accuracy: float,
        results: Sequence[Tuple[str, float, float, int]],
    ) -> Dict[str, List[AssessmentPoint]]:
        """Group raw task results into per-layer candidate lists."""
        grouped: Dict[str, List[AssessmentPoint]] = {}
        for layer, eb, accuracy, size in results:
            grouped.setdefault(layer, []).append(
                AssessmentPoint(
                    layer=layer,
                    error_bound=eb,
                    accuracy=accuracy,
                    degradation=baseline_accuracy - accuracy,
                    compressed_bytes=size,
                )
            )
        for points in grouped.values():
            points.sort(key=lambda p: p.error_bound)
        return grouped
