"""Parallel execution substrate (the multi-GPU substitute).

Two layers live here:

* :mod:`repro.parallel.pool` — the reusable :class:`TaskPool` (process or
  thread) plus worker-count resolution (``REPRO_WORKERS`` env var, else all
  CPUs).  The SZ chunk engine and the DeepSZ encoder/decoder layer fan-out
  run on it.
* :mod:`repro.parallel.executor` — the Algorithm 1 assessment harness: the
  expensive part of DeepSZ encoding is Step 2's dozens of forward-pass tests,
  one per (layer, error bound) candidate.  The paper runs them on four V100
  GPUs; this package runs them on a :class:`TaskPool` (mpi4py is not
  available offline) and exposes the same scaling behaviour for the Figure 7a
  experiment.

The executor symbols are loaded lazily: the executor imports
:mod:`repro.core.assessment`, which itself uses the SZ compressor, so an
eager import here would create a cycle with :mod:`repro.sz.compressor`'s use
of the task pool.
"""

from repro.parallel.pool import TaskPool, in_pool_worker, resolve_workers

__all__ = [
    "TaskPool",
    "resolve_workers",
    "in_pool_worker",
    "ParallelAssessment",
    "AssessmentTask",
    "run_tasks_serial",
]

_EXECUTOR_EXPORTS = ("ParallelAssessment", "AssessmentTask", "run_tasks_serial")


def __getattr__(name: str):
    # importlib (not `from ... import`) avoids re-entering this __getattr__
    # through the import system's fromlist handling.
    if name == "executor":
        import importlib

        return importlib.import_module("repro.parallel.executor")
    if name in _EXECUTOR_EXPORTS:
        import importlib

        return getattr(importlib.import_module("repro.parallel.executor"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
