"""Parallel assessment harness (the multi-GPU substitute).

The expensive part of DeepSZ encoding is Step 2: dozens of forward-pass tests
over the test set, one per (layer, error bound) candidate.  Those tests are
embarrassingly parallel — the paper runs them on four V100 GPUs; this package
runs them on a process pool (mpi4py is not available offline) and exposes the
same scaling behaviour for the Figure 7a experiment.
"""

from repro.parallel.executor import ParallelAssessment, AssessmentTask, run_tasks_serial

__all__ = ["ParallelAssessment", "AssessmentTask", "run_tasks_serial"]
