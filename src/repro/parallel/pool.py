"""Reusable process/thread task pool for the compression engine.

This module generalises the original assessment-only executor into the
task-pool substrate every parallel path in the repository shares: chunk
encode/decode inside :class:`repro.sz.SZCompressor`, layer fan-out inside
:class:`repro.core.DeepSZEncoder` / :class:`repro.core.DeepSZDecoder`, and
the Algorithm 1 assessment harness in :mod:`repro.parallel.executor`.

Worker-count resolution
-----------------------
``resolve_workers(None)`` honours the ``REPRO_WORKERS`` environment variable
and otherwise uses the full ``os.cpu_count()`` (the historical behaviour of
capping at four workers silently wasted big machines).  Passing an explicit
integer always wins.  ``resolve_workers(None)`` is therefore the right
default for command-line tools and benchmarks, while library entry points
default to ``workers=1`` so that single-threaded behaviour stays deterministic
unless the caller opts in.

Nested pools
------------
Tasks frequently want their own inner parallelism (a layer task that chunks
its array, for example).  Spawning a process pool from inside a pool worker
would oversubscribe the machine, so workers are marked via an environment
variable and :meth:`TaskPool.map` silently degrades to the serial loop when
it detects it is already running inside a pool worker.  Serial and parallel
execution produce identical results by construction — tasks must be pure
functions of their arguments.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.obs import metrics as _obs_metrics
from repro.utils.errors import ValidationError

__all__ = ["WORKERS_ENV", "resolve_workers", "in_pool_worker", "TaskPool"]

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Set in every pool worker process so nested pools degrade to serial loops.
_IN_WORKER_ENV = "_REPRO_IN_POOL_WORKER"

#: Thread-mode equivalent of the env marker: set in every worker thread.
_THREAD_MARKER = threading.local()

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count.

    * explicit ``workers`` (must be >= 1) wins;
    * else the ``REPRO_WORKERS`` environment variable, when set;
    * else ``os.cpu_count()`` — the full machine, no artificial cap.
    """
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        return workers
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValidationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValidationError(f"{WORKERS_ENV} must be >= 1, got {value}")
        return value
    return max(1, os.cpu_count() or 1)


def in_pool_worker() -> bool:
    """True when the current process (or thread) is a :class:`TaskPool` worker."""
    return os.environ.get(_IN_WORKER_ENV) == "1" or getattr(
        _THREAD_MARKER, "active", False
    )


def _mark_worker(initializer: Callable | None, initargs: tuple) -> None:
    """Pool initializer run in every worker: set the nesting marker, then chain."""
    os.environ[_IN_WORKER_ENV] = "1"
    if initializer is not None:
        initializer(*initargs)


class TaskPool:
    """Map pure functions over task lists on a process (or thread) pool.

    Parameters
    ----------
    workers:
        Worker count; ``None`` resolves through :func:`resolve_workers`
        (``REPRO_WORKERS`` env var, else all CPUs).
    mode:
        ``"process"`` (default) for CPU-bound Python work, ``"thread"`` for
        workloads dominated by GIL-releasing C calls (zlib/lzma/NumPy).
    """

    def __init__(self, workers: int | None = None, *, mode: str = "process") -> None:
        if mode not in ("process", "thread"):
            raise ValidationError(f"mode must be 'process' or 'thread', got {mode!r}")
        self.workers = resolve_workers(workers)
        self.mode = mode

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> List[R]:
        """Apply ``fn`` to every item, preserving order.

        Falls back to a serial in-process loop when only one worker is
        configured, when there is at most one task, or when already running
        inside a pool worker (nested parallelism).  The serial loop produces
        identical results because tasks are pure functions of their inputs.
        """
        tasks: Sequence[T] = list(items)
        if _obs_metrics.is_enabled():
            # Counted on the submitting side (pool workers may be separate
            # processes whose registries are throwaway).
            _obs_metrics.registry().counter(
                "repro_taskpool_tasks_total",
                "Tasks submitted through TaskPool.map, by pool mode.",
                labels=("mode",),
            ).labels(mode=self.mode).inc(len(tasks))
        if self.workers == 1 or len(tasks) <= 1 or in_pool_worker():
            if initializer is not None:
                initializer(*initargs)
            return [fn(task) for task in tasks]
        if self.mode == "thread":

            def run_marked(task: T) -> R:
                # Mark the worker thread so a task that opens its own pool
                # degrades to the serial loop instead of oversubscribing.
                _THREAD_MARKER.active = True
                return fn(task)

            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                if initializer is not None:
                    initializer(*initargs)
                return list(pool.map(run_marked, tasks))
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)),
            initializer=_mark_worker,
            initargs=(initializer, initargs),
        ) as pool:
            return list(pool.map(fn, tasks))
