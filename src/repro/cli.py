"""``python -m repro`` — command-line front end for the archive + serving stack.

Subcommands
-----------
``compress``
    Encode a model into a random-access ``.dsz`` archive.  Either a
    synthetic layer spec (``--synthetic "fc6=256x512:0.1,..."`` — fast,
    deterministic, used by CI) or a zoo model (``--model alexnet-mini`` —
    trains/loads the cached mini network and runs the full DeepSZ
    pipeline).  ``--store DIR`` additionally puts the archive into a
    content-addressed :class:`~repro.store.ModelStore` and prints the
    digest.
``inspect``
    Print the archive manifest: per-layer shapes, codecs, segment sizes
    and compression ratios, without decoding anything.
``verify``
    CRC-check every segment and decode every layer; exit non-zero on the
    first integrity or decode failure.
``serve-bench``
    Run the serving benchmark (cold full decode vs lazy first layer vs
    warm cache access, plus concurrent layer-access throughput) and print
    the numbers, optionally as JSON.  ``--sparse`` serves layers in
    compressed-domain form (CSC matmuls straight from the two-array
    decode, with cache entries charged their true sparse footprint).
``gateway-bench``
    Benchmark the multi-model serving gateway: N synthetic models (dense,
    sparse, or mixed), each behind a configurable replica pool and shard
    policy, under closed-loop client load — swept over a list of replica
    counts — followed by an open-loop saturation burst against a tiny
    admission queue that shows bounded-queue rejection instead of latency
    collapse.  ``--backend process`` runs the replicas as GIL-free worker
    processes over the shared-memory weight cache (``both`` prints a
    thread-vs-process comparison).
``metrics``
    Render a metrics dump produced by ``gateway-bench --metrics-out`` (or
    any :meth:`~repro.obs.metrics.MetricsRegistry` exposition written to a
    file): one-shot by default, ``--watch SECONDS`` to re-render as the
    file is rewritten.  Prometheus text (``.prom``) and JSON dumps are both
    understood.
``assess``
    Run Step 2 (error-bound assessment, Algorithm 1) on a zoo model with
    the parallel activation-reuse engine and print the per-layer
    assessment points plus the Algorithm 2 error-bound plan.  ``--cache``
    persists candidate results so repeated runs are incremental;
    ``--workers 0`` uses every core.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis import format_bytes, render_table
from repro.core.encoder import DeepSZEncoder
from repro.pruning.magnitude import prune_weights
from repro.pruning.sparse_format import SparseLayer, encode_sparse
from repro.store import ModelArchive, ModelStore
from repro.utils.errors import ReproError, ValidationError

__all__ = ["main", "build_parser", "parse_synthetic_spec", "synthetic_sparse_layers"]


# ---------------------------------------------------------------------------
# compress
# ---------------------------------------------------------------------------

_DEFAULT_SPEC = "fc6=256x512:0.1,fc7=128x256:0.1,fc8=64x128:0.25"


def parse_synthetic_spec(spec: str) -> List[tuple[str, tuple[int, int], float]]:
    """Parse ``name=ROWSxCOLS:density,...`` into (name, shape, density)."""
    layers: List[tuple[str, tuple[int, int], float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            name, rest = part.split("=", 1)
            dims, density = rest.split(":", 1)
            rows, cols = dims.lower().split("x", 1)
            layers.append((name.strip(), (int(rows), int(cols)), float(density)))
        except ValueError:
            raise ValidationError(
                f"bad synthetic layer spec {part!r}; expected name=ROWSxCOLS:density"
            ) from None
    if not layers:
        raise ValidationError("synthetic spec contains no layers")
    for name, shape, density in layers:
        if shape[0] < 1 or shape[1] < 1 or not (0.0 < density <= 1.0):
            raise ValidationError(f"bad synthetic layer {name!r}: {shape}, {density}")
    return layers


def synthetic_sparse_layers(
    spec: str, *, seed: int = 0
) -> Dict[str, SparseLayer]:
    """Deterministic pruned layers matching a synthetic spec."""
    rng = np.random.default_rng(seed)
    layers: Dict[str, SparseLayer] = {}
    for name, shape, density in parse_synthetic_spec(spec):
        weights = (rng.standard_normal(shape) * 0.05).astype(np.float32)
        pruned, _ = prune_weights(weights, density)
        layers[name] = encode_sparse(pruned)
    return layers


def _cmd_compress(args: argparse.Namespace) -> int:
    if args.model is not None:
        from repro.core import DeepSZ, DeepSZConfig
        from repro.nn import zoo

        pruned, _, test = zoo.pruned_model(args.model)
        config = DeepSZConfig(
            expected_accuracy_loss=args.accuracy_loss,
            chunk_size=args.chunk_size,
            workers=args.workers,
            assessment_samples=args.assessment_samples,
            sparse_inference=args.sparse_inference,
        )
        result = DeepSZ(config).compress(pruned, test.images, test.labels)
        model = result.model
    else:
        if args.sparse_inference:
            raise ValidationError(
                "--sparse-inference requires --model (the zoo pipeline "
                "measures compressed accuracy; synthetic layers have none)"
            )
        sparse = synthetic_sparse_layers(args.synthetic, seed=args.seed)
        encoder = DeepSZEncoder(chunk_size=args.chunk_size, workers=args.workers)
        model = encoder.encode(
            "synthetic", sparse, {name: args.error_bound for name in sparse}
        )
    written = model.save(args.out)
    print(f"wrote {args.out}: {format_bytes(written)}, {len(model.layers)} layers")
    if args.store is not None:
        store = ModelStore(args.store)
        digest = store.put_file(args.out)
        print(f"stored as sha256:{digest}")
    return 0


# ---------------------------------------------------------------------------
# inspect / verify
# ---------------------------------------------------------------------------


def _cmd_inspect(args: argparse.Namespace) -> int:
    with ModelArchive.open(args.archive) as archive:
        manifest = archive.manifest
        if args.json:
            from repro.store.archive import manifest_to_dict

            payload = manifest_to_dict(manifest)
            payload["archive_version"] = archive.version
            payload["archive_bytes"] = archive.size
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        rows = []
        for name, entry in manifest.layers.items():
            dense = entry.shape[0] * entry.shape[1] * 4
            rows.append(
                [
                    name,
                    f"{entry.shape[0]}x{entry.shape[1]}",
                    entry.nnz,
                    f"{entry.error_bound:.0e}",
                    entry.data_codec,
                    entry.index_backend,
                    format_bytes(entry.segments["sz"].length),
                    format_bytes(entry.segments["index"].length),
                    f"{dense / entry.compressed_bytes:.1f}x"
                    if entry.compressed_bytes
                    else "inf",
                ]
            )
        title = (
            f"{args.archive} — network {manifest.network!r}, "
            f"format v{archive.version}, {format_bytes(archive.size)}"
        )
        print(
            render_table(
                ["layer", "shape", "nnz", "eb", "data", "index", "sz bytes",
                 "idx bytes", "ratio"],
                rows,
                title=title,
            )
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.decoder import decode_compressed_layer

    with ModelArchive.open(args.archive) as archive:
        failures = 0
        for name in archive.layer_names:
            entry = archive.manifest.layers[name]
            try:
                if args.checksums_only:
                    # CRC-check this layer's segments only, so one corrupt
                    # layer still lets the report cover every other layer.
                    unverifiable = [
                        kind
                        for kind, seg in entry.segments.items()
                        if seg.crc32 is None
                    ]
                    for kind in entry.segments:
                        archive.segment(name, kind, verify=True)
                    status = (
                        f"no checksum (v1-era: {', '.join(unverifiable)})"
                        if unverifiable
                        else "crc ok"
                    )
                else:
                    layer = archive.read_layer(name, verify=True)
                    dense = decode_compressed_layer(layer)
                    status = f"ok ({dense.shape[0]}x{dense.shape[1]} decoded)"
            except ReproError as exc:
                status = f"FAILED: {exc}"
                failures += 1
            print(f"  {name:<12} {status}")
        if failures:
            print(f"verification FAILED for {failures} layer(s)")
            return 1
        print(f"all {len(archive.layer_names)} layers verified")
    return 0


# ---------------------------------------------------------------------------
# serve-bench
# ---------------------------------------------------------------------------


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import serving_benchmark

    concurrency = [int(c) for c in args.concurrency.split(",") if c.strip()]
    results = serving_benchmark(
        args.archive,
        concurrency=concurrency,
        accesses_per_thread=args.requests,
        warm_repeats=args.warm_repeats,
        cache_bytes=args.cache_mb * 1024 * 1024,
        sparse=args.sparse,
    )
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
        return 0
    mode = "sparse (compressed-domain)" if results["sparse"] else "dense"
    print(f"archive: {format_bytes(results['archive_bytes'])}, "
          f"{results['layers']} layers, {mode} resident "
          f"{format_bytes(results['decoded_bytes'])}")
    print(f"cold full decode     : {results['cold_full_decode_s'] * 1e3:9.2f} ms")
    print(f"cold first layer     : {results['cold_first_layer_s'] * 1e3:9.2f} ms")
    print(f"warm layer access    : {results['warm_layer_access_s'] * 1e6:9.2f} us")
    print(f"warm vs cold speedup : {results['warm_vs_cold_speedup']:9.0f}x")
    for workers, rate in results["throughput_accesses_per_s"].items():
        print(f"throughput @{workers:>2} threads: {rate:12.0f} accesses/s")
    return 0


# ---------------------------------------------------------------------------
# gateway-bench
# ---------------------------------------------------------------------------


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    from repro.core.encoder import DeepSZEncoder
    from repro.serve.bench import gateway_benchmark
    from repro.store import archive_bytes

    if args.models < 1:
        raise ValidationError("--models must be >= 1")
    if args.sparse not in ("none", "mixed", "all"):
        raise ValidationError("--sparse must be one of none, mixed, all")
    replica_counts = sorted(
        {int(r) for r in args.replicas.split(",") if r.strip()}
    )
    if not replica_counts or min(replica_counts) < 1:
        raise ValidationError("--replicas needs positive comma-separated counts")

    sources: Dict[str, bytes] = {}
    sparse_flags: Dict[str, bool] = {}
    encoder = DeepSZEncoder(workers=args.workers)
    for index in range(args.models):
        name = f"model-{index}"
        layers = synthetic_sparse_layers(args.synthetic, seed=args.seed + index)
        model = encoder.encode(name, layers, {n: args.error_bound for n in layers})
        sources[name] = archive_bytes(model)
        sparse_flags[name] = args.sparse == "all" or (
            args.sparse == "mixed" and index % 2 == 1
        )

    trace_sample = float(args.trace_sample)
    trace_out = args.trace_out
    if trace_sample > 0.0 and trace_out is None:
        trace_out = "gateway_trace.jsonl"

    backends = ["thread", "process"] if args.backend == "both" else [args.backend]
    by_backend: Dict[str, Dict[str, Dict]] = {}
    for backend in backends:
        sweep: Dict[str, Dict] = {}
        for count in replica_counts:
            sweep[str(count)] = gateway_benchmark(
                sources,
                replicas=count,
                clients=args.clients,
                requests_per_client=args.requests,
                policy=args.policy,
                sparse=sparse_flags,
                batch_size=args.batch_size,
                seed=args.seed,
                backend=backend,
                saturation_queue_depth=(
                    args.queue_depth if count == replica_counts[-1] else None
                ),
                # Traces append across the sweep; the metrics dump is
                # rewritten per run, so the file ends up with the final
                # (largest-pool, last-backend) snapshot.
                trace_sample=trace_sample,
                trace_path=trace_out,
                metrics_path=args.metrics_out,
            )
        by_backend[backend] = sweep

    if args.json:
        # Single-backend output keeps the historical {replicas: result}
        # shape; --backend both nests it per backend.
        payload = by_backend[backends[0]] if len(backends) == 1 else by_backend
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    mode = {"none": "dense", "all": "sparse", "mixed": "mixed dense/sparse"}[args.sparse]
    rows = []
    for backend in backends:
        for count, result in by_backend[backend].items():
            rows.append(
                [
                    backend,
                    count,
                    f"{result['throughput_rps']:,.0f} req/s",
                    f"{result['latency_ms'].get('p50', 0.0):.2f} ms",
                    f"{result['latency_ms'].get('p99', 0.0):.2f} ms",
                    format_bytes(result["cache_bytes"] + result.get("shared_bytes", 0)),
                ]
            )
    print(
        render_table(
            ["backend", "replicas", "throughput", "p50", "p99", "resident"],
            rows,
            title=(
                f"gateway: {args.models} {mode} model(s), policy {args.policy!r}, "
                f"{args.clients} clients x {args.requests} closed-loop requests"
            ),
        )
    )
    if len(backends) == 2:
        # Thread-vs-process headline: the speedup at the largest pool.
        top = str(replica_counts[-1])
        thread_rps = by_backend["thread"][top]["throughput_rps"]
        process_rps = by_backend["process"][top]["throughput_rps"]
        ratio = process_rps / thread_rps if thread_rps else float("inf")
        print(
            f"process vs thread @ {top} replicas: "
            f"{process_rps:,.0f} vs {thread_rps:,.0f} req/s ({ratio:.2f}x)"
        )
    for backend in backends:
        saturation = by_backend[backend][str(replica_counts[-1])].get("saturation")
        if saturation:
            print(
                f"[{backend}] saturation @ queue depth "
                f"{saturation['queue_depth_limit']}: "
                f"{saturation['offered']} offered -> {saturation['admitted']} admitted, "
                f"{saturation['rejected']} fast-fail rejected "
                f"({saturation['rejection_rate']:.0%}); admitted p99 "
                f"{saturation['latency_ms'].get('p99', 0.0):.1f} ms"
            )
    return 0


# ---------------------------------------------------------------------------
# scenario-bench
# ---------------------------------------------------------------------------


def _csv(text: str) -> list:
    return [part.strip() for part in str(text).split(",") if part.strip()]


def _cmd_scenario_bench(args: argparse.Namespace) -> int:
    from repro.sim.matrix import (
        DEFAULT_SPEC,
        MatrixConfig,
        load_config,
        matrix_artifact,
        normalize_policy,
        run_matrix,
    )
    from repro.sim.workload import SCENARIOS, list_scenarios

    if args.list_scenarios:
        rows = [
            [
                name,
                SCENARIOS[name].summary,
                SCENARIOS[name].stresses,
            ]
            for name in list_scenarios()
        ]
        print(render_table(["scenario", "summary", "stresses"], rows,
                           title="scenario catalog (docs/scenarios.md)"))
        return 0

    if args.config:
        config = load_config(args.config)
    else:
        deadline_ms = None if args.deadline_ms <= 0 else float(args.deadline_ms)
        config = MatrixConfig(
            scenarios=tuple(_csv(args.scenario)),
            policies=tuple(normalize_policy(p) for p in _csv(args.policy)),
            backends=tuple(_csv(args.backend)),
            frontdoors=tuple(_csv(args.frontdoor)),
            replicas=tuple(int(r) for r in _csv(args.replicas)),
            queue_depths=tuple(int(q) for q in _csv(args.queue_depth)),
            models=args.models,
            tenants=args.tenants,
            duration_s=args.duration,
            rate_rps=args.rate,
            deadline_ms=deadline_ms,
            seed=args.seed,
            time_scale=args.time_scale,
            mode=args.mode,
            clients=args.clients,
            synthetic=args.synthetic or DEFAULT_SPEC,
        )
        config.validate()

    if args.dump_trace:
        from repro.sim.matrix import _render_traces

        payload = {
            name: json.loads(trace.to_json())
            for name, trace in _render_traces(config).items()
        }
        Path(args.dump_trace).write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"wrote {args.dump_trace}")
        if args.trace_only:
            return 0

    progress = None if args.json else (lambda label: print(f"  cell {label}", flush=True))
    if progress is not None:
        print(
            f"scenario matrix: {config.cell_count()} cells "
            f"({len(config.scenarios)} scenario(s) x {len(config.policies)} "
            f"policy(ies) x {len(config.backends)} backend(s) x "
            f"{len(config.frontdoors)} frontdoor(s))",
            flush=True,
        )
    result = run_matrix(config, progress=progress)
    artifact = matrix_artifact(result, mode=args.bench_mode)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True), encoding="utf-8")

    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
        return 0

    rows = []
    for cell in result["cells"]:
        cache = cell["cache_hit_rate"]["overall"]
        rows.append(
            [
                cell["scenario"],
                cell["policy"],
                cell["backend"],
                cell["frontdoor"],
                str(cell["replicas"]),
                str(cell["queue_depth"]),
                f"{cell['rps']:,.0f} req/s",
                f"{cell['goodput_rps']:,.0f} req/s",
                f"{cell['latency_ms']['p99']:.1f} ms",
                f"{cell['rejection_rate']:.1%}",
                f"{cell['deadline_miss_rate']:.1%}",
                "n/a" if cache is None else f"{cache:.0%}",
            ]
        )
    print(
        render_table(
            ["scenario", "policy", "backend", "door", "rep", "q",
             "rps", "goodput", "p99", "rej", "miss", "cache"],
            rows,
            title=(
                f"scenario x policy matrix: seed {config.seed}, "
                f"{config.duration_s:.1f}s @ {config.rate_rps:.0f} rps nominal, "
                f"{config.models} models / {config.tenants} tenants"
            ),
        )
    )
    for name, info in sorted(result["traces"].items()):
        print(
            f"trace {name}: {info['requests']} requests "
            f"({info['offered_rps']:,.0f} rps offered), sha256 {info['sha256'][:12]}"
        )
    print(f"wrote {out}")
    return 0


# ---------------------------------------------------------------------------
# serve-http
# ---------------------------------------------------------------------------


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import AsyncGateway, HttpFrontDoor
    from repro.store import archive_bytes

    sources: Dict[str, bytes] = {}
    if args.archive:
        for spec in args.archive:
            name, _, path = spec.partition("=")
            if not path:
                raise ValidationError(
                    f"bad --archive {spec!r}; expected name=path.dsz"
                )
            from pathlib import Path

            sources[name] = Path(path).read_bytes()
    else:
        encoder = DeepSZEncoder(workers=args.workers)
        for index in range(args.models):
            name = f"model-{index}"
            layers = synthetic_sparse_layers(args.synthetic, seed=args.seed + index)
            model = encoder.encode(
                name, layers, {n: args.error_bound for n in layers}
            )
            sources[name] = archive_bytes(model)

    async def _serve() -> int:
        gateway = AsyncGateway(replica_backend=args.backend)
        for name, blob in sources.items():
            gateway.add_model(
                name,
                blob,
                replicas=args.replicas,
                policy=args.policy,
                max_queue_depth=args.queue_depth,
                batch_size=args.batch_size,
            )
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stopping.set)
            except NotImplementedError:  # non-Unix event loop
                signal.signal(signum, lambda *_: stopping.set())
        await gateway.start()
        try:
            front = HttpFrontDoor(gateway, host=args.host, port=args.port)
            await front.start()
            host, port = front.address
            print(
                f"serving {len(sources)} model(s) on http://{host}:{port} "
                f"({args.backend} backend, {args.replicas} replica(s)/model); "
                "endpoints: POST /v1/infer/<model>, GET /metrics, GET /healthz",
                flush=True,
            )
            await stopping.wait()
            print("draining...", flush=True)
            # Acceptor first (no new connections), then the gateway drain
            # (every admitted request settles before the fleet stops).
            await front.stop()
        finally:
            await gateway.stop()
        print("stopped", flush=True)
        return 0

    return asyncio.run(_serve())


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def _metrics_rows(path, fmt: str) -> List[List[str]]:
    """Table rows (name, kind, labels, value) from a metrics dump file."""
    from pathlib import Path as _Path

    from repro.obs.metrics import parse_prometheus

    path = _Path(path)
    text = path.read_text(encoding="utf-8")
    if fmt == "auto":
        fmt = "prom" if path.suffix == ".prom" else "json"
    rows: List[List[str]] = []
    if fmt == "json":
        payload = json.loads(text)
        for name, family in sorted(payload.get("metrics", {}).items()):
            for sample in family.get("samples", []):
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(sample.get("labels", {}).items())
                )
                hist = sample.get("histogram")
                if hist is not None:
                    value = f"count={hist['count']} sum={hist['sum']:.6g}"
                else:
                    value = f"{sample['value']:.6g}"
                rows.append([name, family.get("kind", "?"), labels, value])
    else:
        for name, series in sorted(parse_prometheus(text).items()):
            for labels, value in series["samples"]:
                label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                rows.append([name, series["type"] or "?", label_text, f"{value:.6g}"])
    return rows


def _cmd_metrics(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path as _Path

    def render_once() -> int:
        path = _Path(args.path)
        if not path.exists():
            print(f"(waiting for {path} to appear)")
            return 1
        rows = _metrics_rows(path, args.format)
        print(render_table(["metric", "kind", "labels", "value"], rows,
                           title=str(path)))
        return 0

    if args.watch is None:
        missing = render_once()
        if missing:
            print(f"error: no metrics dump at {args.path}", file=sys.stderr)
        return missing
    try:
        while True:
            print(f"--- {time.strftime('%H:%M:%S')} ---")
            render_once()
            time.sleep(max(0.1, float(args.watch)))
    except KeyboardInterrupt:
        return 0


# ---------------------------------------------------------------------------
# assess
# ---------------------------------------------------------------------------


def _cmd_assess(args: argparse.Namespace) -> int:
    import time

    from repro.core.assessment import AssessmentConfig, assess_network
    from repro.core.optimizer import OptimizerConfig, optimize_error_bounds
    from repro.core.pipeline import assessment_subset
    from repro.nn import zoo
    from repro.store import AssessmentCache

    pruned, _, test = zoo.pruned_model(args.model)
    images, labels = assessment_subset(test.images, test.labels, args.samples, args.seed)
    config = AssessmentConfig(
        expected_accuracy_loss=args.expected_loss,
        max_fine_tests=args.max_fine_tests,
    )
    cache = AssessmentCache(args.cache) if args.cache is not None else None
    started = time.perf_counter()
    result = assess_network(
        pruned.network,
        pruned.sparse_layers,
        images,
        labels,
        config=config,
        workers=args.workers or None,
        reuse_activations=not args.no_reuse,
        cache=cache,
    )
    elapsed = time.perf_counter() - started
    plan = optimize_error_bounds(
        result.candidates(),
        OptimizerConfig(expected_accuracy_loss=args.expected_loss),
    )

    if args.json:
        payload = {
            "network": result.network,
            "baseline_accuracy": result.baseline_accuracy,
            "tests_performed": result.tests_performed,
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
            "elapsed_s": elapsed,
            "samples": int(len(images)),
            "layers": {
                name: {
                    "points": [
                        {
                            "error_bound": p.error_bound,
                            "accuracy": p.accuracy,
                            "degradation": p.degradation,
                            "compressed_bytes": p.compressed_bytes,
                        }
                        for p in assessment.points
                    ],
                    "feasible_range": list(assessment.feasible_range),
                }
                for name, assessment in result.layers.items()
            },
            "plan": {
                "error_bounds": dict(plan.error_bounds),
                "predicted_loss": plan.predicted_loss,
                "total_compressed_bytes": plan.total_compressed_bytes,
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    rows = []
    for name, assessment in result.layers.items():
        lo, hi = assessment.feasible_range
        chosen = plan.error_bounds[name]
        chosen_point = assessment.point_for(chosen)
        rows.append(
            [
                name,
                len(assessment.points),
                f"{min(assessment.tested_bounds):.0e}..{max(assessment.tested_bounds):.0e}",
                f"{lo:.0e}..{hi:.0e}",
                f"{chosen:.0e}",
                f"{chosen_point.degradation * 100:+.2f}%",
                format_bytes(chosen_point.compressed_bytes),
            ]
        )
    print(
        render_table(
            ["layer", "points", "tested", "feasible", "chosen eb", "degr.", "bytes"],
            rows,
            title=(
                f"{result.network}: baseline {result.baseline_accuracy * 100:.2f}% "
                f"on {len(images)} samples"
            ),
        )
    )
    cache_note = f", {result.cache_hits} cache hits" if cache is not None else ""
    print(
        f"{result.tests_performed} assessment points "
        f"({result.evaluations} evaluations{cache_note}) in {elapsed:.2f}s; "
        f"plan predicts {plan.predicted_loss * 100:.2f}% loss, "
        f"{format_bytes(plan.total_compressed_bytes)} compressed"
    )
    return 0


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.engine import run_cli

    return run_cli(
        args.paths,
        fmt=args.format,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
    )


# ---------------------------------------------------------------------------
# parser / entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DeepSZ model archive + serving tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="encode a model into a .dsz archive")
    p.add_argument("--out", required=True, help="output .dsz archive path")
    p.add_argument("--model", default=None,
                   help="zoo model name (runs the full DeepSZ pipeline)")
    p.add_argument("--synthetic", default=_DEFAULT_SPEC,
                   help="synthetic layer spec name=ROWSxCOLS:density,...")
    p.add_argument("--error-bound", type=float, default=1e-3,
                   help="absolute error bound for synthetic layers")
    p.add_argument("--accuracy-loss", type=float, default=0.01,
                   help="expected accuracy loss (zoo pipeline mode)")
    p.add_argument("--assessment-samples", type=int, default=300,
                   help="assessment sample cap (zoo pipeline mode)")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="chunked v2 SZ container chunk size (elements)")
    p.add_argument("--workers", type=int, default=1, help="encode pool workers")
    p.add_argument("--sparse-inference", action="store_true",
                   help="verify the compressed model through the sparse "
                        "(compressed-domain) forward pass (zoo pipeline mode)")
    p.add_argument("--seed", type=int, default=0, help="synthetic weight seed")
    p.add_argument("--store", default=None,
                   help="also put the archive into this content-addressed store")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("inspect", help="print an archive's manifest")
    p.add_argument("archive")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("verify", help="checksum + decode every layer")
    p.add_argument("archive")
    p.add_argument("--checksums-only", action="store_true",
                   help="CRC-check segments without decoding")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("serve-bench", help="benchmark the serving runtime")
    p.add_argument("archive")
    p.add_argument("--requests", type=int, default=200,
                   help="layer accesses per thread in the throughput phase")
    p.add_argument("--warm-repeats", type=int, default=50,
                   help="warm passes over all layers")
    p.add_argument("--concurrency", default="1,2,4,8",
                   help="comma-separated thread counts")
    p.add_argument("--cache-mb", type=int, default=256,
                   help="decoded-layer cache budget (MiB)")
    p.add_argument("--sparse", action="store_true",
                   help="serve layers in compressed-domain (sparse) form")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "gateway-bench", help="benchmark the multi-model serving gateway"
    )
    p.add_argument("--models", type=int, default=2,
                   help="number of synthetic models hosted behind the gateway")
    p.add_argument("--synthetic", default=_DEFAULT_SPEC,
                   help="synthetic layer spec for each model (seed varies per model)")
    p.add_argument("--error-bound", type=float, default=1e-3,
                   help="absolute error bound for the synthetic layers")
    p.add_argument("--replicas", default="1,2,4",
                   help="comma-separated replica counts to sweep")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop client threads")
    p.add_argument("--requests", type=int, default=64,
                   help="requests per client per sweep point")
    p.add_argument("--policy", default="round-robin",
                   choices=["round-robin", "least-loaded", "consistent-hash"],
                   help="shard policy for every model")
    p.add_argument("--sparse", default="mixed", choices=["none", "mixed", "all"],
                   help="serve models dense, mixed (odd models sparse), or all sparse")
    p.add_argument("--backend", default="thread",
                   choices=["thread", "process", "both"],
                   help="replica backend: in-process threads, GIL-free worker "
                        "processes over the shared-memory weight cache, or "
                        "both for a side-by-side comparison")
    p.add_argument("--batch-size", type=int, default=16,
                   help="replica server dynamic-batching size")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="admission queue depth for the saturation burst")
    p.add_argument("--workers", type=int, default=1, help="encode pool workers")
    p.add_argument("--seed", type=int, default=0, help="synthetic weight seed")
    p.add_argument("--trace-sample", type=float, default=0.0,
                   help="trace this fraction of closed-loop requests "
                        "(span JSONL; 1.0 = every request)")
    p.add_argument("--trace-out", default=None,
                   help="span JSONL output path (default gateway_trace.jsonl "
                        "when --trace-sample > 0)")
    p.add_argument("--metrics-out", default=None,
                   help="dump the metrics registry here after the closed-loop "
                        "phase (.prom = Prometheus text, else JSON)")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_gateway_bench)

    p = sub.add_parser(
        "scenario-bench",
        help="run a scenario x policy workload-simulation matrix",
        description=(
            "Replay deterministic workload traces (see docs/scenarios.md) "
            "against every (scenario, policy, backend, frontdoor, replicas, "
            "queue-depth) grid cell and write one stable-schema "
            "BENCH_scenarios.json artifact (see docs/benchmarking.md)."
        ),
    )
    p.add_argument("--config", default=None,
                   help=".toml/.json matrix config (overrides the grid flags)")
    p.add_argument("--scenario", default="steady,burst", metavar="LIST",
                   help="comma-separated scenario names (see --list-scenarios)")
    p.add_argument("--policy", default="round-robin,least-loaded", metavar="LIST",
                   help="comma-separated shard policies (underscores accepted)")
    p.add_argument("--backend", default="thread", metavar="LIST",
                   help="comma-separated replica backends (thread,process)")
    p.add_argument("--frontdoor", default="sync", metavar="LIST",
                   help="comma-separated front doors (sync,async)")
    p.add_argument("--replicas", default="1", metavar="LIST",
                   help="comma-separated replica counts per model")
    p.add_argument("--queue-depth", default="64", metavar="LIST",
                   help="comma-separated admission queue depths")
    p.add_argument("--models", type=int, default=3,
                   help="synthetic model-zoo size (Zipf popularity over it)")
    p.add_argument("--tenants", type=int, default=8,
                   help="tenant population (tenant id doubles as shard key)")
    p.add_argument("--duration", type=float, default=1.0,
                   help="trace duration in seconds")
    p.add_argument("--rate", type=float, default=150.0,
                   help="nominal arrival rate (requests/second)")
    p.add_argument("--deadline-ms", type=float, default=50.0,
                   help="per-request deadline in ms (<= 0 disables deadlines)")
    p.add_argument("--seed", type=int, default=0,
                   help="trace + zoo seed (identical seed = identical trace)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="replay clock multiplier (<1 compresses the trace)")
    p.add_argument("--mode", default="open", choices=["open", "closed"],
                   help="open loop (scheduled arrivals, coordinated-omission-"
                        "free) or closed loop (fixed client pool)")
    p.add_argument("--clients", type=int, default=4,
                   help="closed-loop client count")
    p.add_argument("--synthetic", default=None,
                   help="synthetic layer spec for each zoo model")
    p.add_argument("--out", default="BENCH_scenarios.json",
                   help="artifact output path")
    p.add_argument("--bench-mode", default="full", choices=["full", "smoke"],
                   help="mode tag recorded in the artifact")
    p.add_argument("--dump-trace", default=None, metavar="PATH",
                   help="also write the rendered per-scenario traces as JSON")
    p.add_argument("--trace-only", action="store_true",
                   help="with --dump-trace: stop after writing the traces")
    p.add_argument("--list-scenarios", action="store_true",
                   help="print the scenario catalog and exit")
    p.add_argument("--json", action="store_true", help="emit the artifact JSON")
    p.set_defaults(func=_cmd_scenario_bench)

    p = sub.add_parser(
        "serve-http",
        help="serve models over HTTP via the asyncio gateway front door",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8080,
                   help="bind port (0 = ephemeral, printed at startup)")
    p.add_argument("--archive", action="append", default=None,
                   metavar="NAME=PATH",
                   help="host an existing .dsz archive under NAME "
                        "(repeatable; default: synthetic models)")
    p.add_argument("--models", type=int, default=1,
                   help="number of synthetic models when no --archive is given")
    p.add_argument("--synthetic", default=_DEFAULT_SPEC,
                   help="synthetic layer spec name=ROWSxCOLS:density,...")
    p.add_argument("--error-bound", type=float, default=1e-3,
                   help="absolute error bound for the synthetic layers")
    p.add_argument("--replicas", type=int, default=1,
                   help="replicas per model")
    p.add_argument("--backend", default="process",
                   choices=["thread", "process"],
                   help="replica backend (process = GIL-free workers over "
                        "the shared-memory weight cache)")
    p.add_argument("--policy", default="round-robin",
                   choices=["round-robin", "least-loaded", "consistent-hash"],
                   help="shard policy for every model")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="admission queue depth per model")
    p.add_argument("--batch-size", type=int, default=16,
                   help="replica server dynamic-batching size")
    p.add_argument("--workers", type=int, default=1, help="encode pool workers")
    p.add_argument("--seed", type=int, default=0, help="synthetic weight seed")
    p.set_defaults(func=_cmd_serve_http)

    p = sub.add_parser(
        "metrics", help="render a metrics dump (one-shot or --watch)"
    )
    p.add_argument("path", help="metrics dump file (.prom or .json)")
    p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="re-render every SECONDS until interrupted")
    p.add_argument("--format", default="auto", choices=["auto", "prom", "json"],
                   help="dump format (auto = by file suffix)")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "assess", help="run the Step 2 error-bound assessment on a zoo model"
    )
    p.add_argument("--model", default="lenet-300-100",
                   help="zoo model name (trained/pruned on first use, then cached)")
    p.add_argument("--workers", type=int, default=0,
                   help="assessment pool threads (0 = all cores / REPRO_WORKERS)")
    p.add_argument("--samples", type=int, default=None,
                   help="seeded-shuffled test-sample cap for the sweep")
    p.add_argument("--seed", type=int, default=None,
                   help="seed of the sample-subset draw")
    p.add_argument("--expected-loss", type=float, default=0.01,
                   help="expected accuracy loss driving the fine scans")
    p.add_argument("--max-fine-tests", type=int, default=24,
                   help="safety cap on each layer's fine scan")
    p.add_argument("--cache", default=None,
                   help="persist candidate results under this directory")
    p.add_argument("--no-reuse", action="store_true",
                   help="disable activation-reuse checkpointing")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=_cmd_assess)

    p = sub.add_parser(
        "lint", help="run the project-native static analysis rules"
    )
    from repro.lint.engine import add_cli_arguments

    add_cli_arguments(p)
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
