"""Layers of the NumPy NN framework.

Every layer implements ``forward`` and ``backward``; trainable layers expose
their parameters through ``params`` / ``grads`` dictionaries so the trainer
and the pruning machinery can address them uniformly.  Only the layer types
the paper's four networks need are implemented: Dense (fc), Conv2D, ReLU,
MaxPool2D, Flatten, Dropout and Softmax.

The convolution and pooling hot paths use im2col / stride-tricks windowing so
that the heavy arithmetic runs inside BLAS-backed matmuls and NumPy
reductions, never in Python loops (per the hpc-parallel guide idioms).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.initializers import he_init, normal_init, zeros_init
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "Softmax",
]


class Layer:
    """Base class: a named, optionally trainable transformation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # -- interface --------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- bookkeeping ------------------------------------------------------
    @property
    def trainable(self) -> bool:
        return bool(self.params)

    def parameter_count(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def parameter_bytes(self) -> int:
        """Storage footprint of the parameters (float32)."""
        return int(sum(p.size * p.itemsize for p in self.params.values()))

    def zero_grads(self) -> None:
        for key, p in self.params.items():
            self.grads[key] = np.zeros_like(p)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, params={self.parameter_count()})"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W.T + b``.

    The weight matrix uses the paper's (out_features, in_features) orientation
    — e.g. AlexNet fc6 is 4096 x 9216 — so that the flattened 1-D view of
    ``W`` is exactly the "data array" DeepSZ compresses.

    The layer runs in one of two weight modes:

    * **dense** (default) — ``params["weight"]`` holds the float32 matrix
      and forward/backward are BLAS matmuls;
    * **sparse** — :meth:`set_sparse_weights` swaps the matrix for a
      :class:`repro.nn.sparse.SparseWeight` (CSC) and forward runs the
      compressed-domain matmul.  ``params["weight"]`` is dropped so the
      resident footprint really is the sparse one; the mode is
      inference-only (training forward and backward raise).  Installing
      dense weights (:meth:`set_dense_weights`) switches back.
    """

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        *,
        rng=None,
        weight_std: float | None = None,
    ) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValidationError("Dense dimensions must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = make_rng(rng)
        if weight_std is None:
            weight = he_init((out_features, in_features), fan_in=in_features, rng=rng)
        else:
            weight = normal_init((out_features, in_features), std=weight_std, rng=rng)
        self.params = {"weight": weight, "bias": zeros_init((out_features,))}
        self.zero_grads()
        self._x: Optional[np.ndarray] = None
        self._sparse = None  # Optional[SparseWeight]; set via set_sparse_weights

    # -- weight modes ------------------------------------------------------
    @property
    def is_sparse(self) -> bool:
        return self._sparse is not None

    @property
    def sparse_weight(self):
        """The resident :class:`~repro.nn.sparse.SparseWeight` (or None)."""
        return self._sparse

    def set_sparse_weights(self, weight) -> None:
        """Switch to compressed-domain execution.

        Accepts a :class:`~repro.nn.sparse.SparseWeight`, a SciPy sparse
        matrix, or a two-array :class:`~repro.pruning.SparseLayer`; the shape
        must match (out_features, in_features).  The dense ``params["weight"]``
        entry is removed — the sparse matrix is the only resident copy.
        """
        from repro.nn.sparse import SparseWeight

        sparse = SparseWeight.coerce(weight)
        expected = (self.out_features, self.in_features)
        if sparse.shape != expected:
            raise ValidationError(
                f"weight shape mismatch for {self.name!r}: "
                f"expected {expected}, got {sparse.shape}"
            )
        self._sparse = sparse
        self.params.pop("weight", None)
        self.grads.pop("weight", None)

    def set_dense_weights(self, weights: np.ndarray) -> None:
        """Install a dense weight matrix (leaves sparse mode if active)."""
        weights = np.asarray(weights, dtype=np.float32)
        expected = (self.out_features, self.in_features)
        if weights.shape != expected:
            raise ValidationError(
                f"weight shape mismatch for {self.name!r}: "
                f"expected {expected}, got {weights.shape}"
            )
        self.params["weight"] = weights.copy()
        self.grads["weight"] = np.zeros_like(self.params["weight"])
        self._sparse = None

    def dense_weights(self) -> np.ndarray:
        """The weight matrix as a dense array (materialised in sparse mode)."""
        if self._sparse is not None:
            return self._sparse.to_dense()
        return self.params["weight"]

    def parameter_count(self) -> int:
        count = super().parameter_count()
        if self._sparse is not None:
            count += self._sparse.nnz
        return count

    def parameter_bytes(self) -> int:
        """Resident footprint: CSC arrays in sparse mode, float32 otherwise."""
        total = super().parameter_bytes()
        if self._sparse is not None:
            total += self._sparse.nbytes
        return total

    # -- execution ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValidationError(
                f"{self.name}: expected input (N, {self.in_features}), got {x.shape}"
            )
        if self._sparse is not None:
            if training:
                raise ValidationError(
                    f"{self.name}: sparse-mode Dense is inference-only "
                    "(install dense weights to train)"
                )
            return self._sparse.matmul(x) + self.params["bias"]
        if training:
            self._x = x
        return x @ self.params["weight"].T + self.params["bias"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._sparse is not None:
            raise ValidationError(
                f"{self.name}: sparse-mode Dense is inference-only "
                "(install dense weights to train)"
            )
        if self._x is None:
            raise ValidationError(f"{self.name}: backward called before a training forward pass")
        self.grads["weight"] = grad_out.T @ self._x
        self.grads["bias"] = grad_out.sum(axis=0)
        return grad_out @ self.params["weight"]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns for a matmul-based convolution.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValidationError("convolution output size is non-positive")
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add column gradients back to image space (inverse of im2col)."""
    n, c, h, w = x_shape
    x_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols6[:, :, :, :, i, j]
            )
    if pad:
        return x_padded[:, :, pad : pad + h, pad : pad + w]
    return x_padded


class Conv2D(Layer):
    """2-D convolution implemented with im2col + matmul."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        rng=None,
    ) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValidationError("Conv2D dimensions must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        fan_in = in_channels * kernel_size * kernel_size
        rng = make_rng(rng)
        self.params = {
            "weight": he_init(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
            ),
            "bias": zeros_init((out_channels,)),
        }
        self.zero_grads()
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValidationError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_mat = self.params["weight"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["bias"]
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, cols, out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ValidationError(f"{self.name}: backward called before a training forward pass")
        x_shape, cols, out_h, out_w = self._cache
        n = x_shape[0]
        k = self.kernel_size
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        w_mat = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] = (grad_mat.T @ cols).reshape(self.params["weight"].shape)
        self.grads["bias"] = grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        return _col2im(grad_cols, x_shape, k, k, self.stride, self.padding, out_h, out_w)


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ValidationError(f"{self.name}: backward called before a training forward pass")
        return grad_out * self._mask


class MaxPool2D(Layer):
    """Non-overlapping (or strided) max pooling."""

    def __init__(self, name: str, pool_size: int = 2, stride: int | None = None) -> None:
        super().__init__(name)
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else int(pool_size)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValidationError(f"{self.name}: expected 4-D input, got {x.shape}")
        n, c, h, w = x.shape
        p, s = self.pool_size, self.stride
        out_h = (h - p) // s + 1
        out_w = (w - p) // s + 1
        shape = (n, c, out_h, out_w, p, p)
        strides = (
            x.strides[0],
            x.strides[1],
            x.strides[2] * s,
            x.strides[3] * s,
            x.strides[2],
            x.strides[3],
        )
        windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
        flat = windows.reshape(n, c, out_h, out_w, p * p)
        out = flat.max(axis=4)
        if training:
            argmax = flat.argmax(axis=4)
            self._cache = (x.shape, argmax, out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ValidationError(f"{self.name}: backward called before a training forward pass")
        x_shape, argmax, out_h, out_w = self._cache
        n, c, h, w = x_shape
        p, s = self.pool_size, self.stride
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        # Scatter each output gradient back to the argmax location.
        ni, ci, oi, oj = np.meshgrid(
            np.arange(n), np.arange(c), np.arange(out_h), np.arange(out_w), indexing="ij"
        )
        di = argmax // p
        dj = argmax % p
        np.add.at(grad_in, (ni, ci, oi * s + di, oj * s + dj), grad_out)
        return grad_in


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ValidationError(f"{self.name}: backward called before a training forward pass")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, name: str, rate: float = 0.5, rng=None) -> None:
        super().__init__(name)
        if not (0.0 <= rate < 1.0):
            raise ValidationError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = make_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Softmax(Layer):
    """Row-wise softmax (numerically stabilised).

    The training loss uses :func:`repro.nn.losses.softmax_cross_entropy`
    directly on logits, so this layer's backward simply passes the gradient
    through (it is only present so that ``Network.forward`` produces the
    probability vector the paper describes as the network output).
    """

    def __init__(self, name: str = "softmax") -> None:
        super().__init__(name)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
