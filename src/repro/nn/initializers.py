"""Weight initializers for the NumPy NN framework."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["he_init", "xavier_init", "normal_init", "zeros_init"]


def he_init(shape: tuple[int, ...], fan_in: int, rng=None) -> np.ndarray:
    """He-normal initialization (suited to ReLU networks)."""
    rng = make_rng(rng)
    std = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_init(shape: tuple[int, ...], fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """Xavier/Glorot-uniform initialization."""
    rng = make_rng(rng)
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def normal_init(shape: tuple[int, ...], std: float = 0.01, rng=None) -> np.ndarray:
    """Plain Gaussian initialization (Caffe's default for AlexNet-style nets)."""
    rng = make_rng(rng)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float32)
