"""Sequential network container.

A :class:`Network` is the object DeepSZ operates on: it exposes the forward
pass, top-k accuracy evaluation, and — crucially for the error-bound
assessment — named access to the fc-layer weight matrices so that a single
layer can be swapped for its decompressed reconstruction while all other
layers stay untouched.

For the assessment engine the container additionally supports *functional*
partial execution: :meth:`Network.forward_to` / :meth:`Network.forward_collect`
checkpoint the activations entering a named layer, and
:meth:`Network.forward_from` resumes the forward pass from such a checkpoint,
optionally substituting the weight matrix of the resumed layer without
mutating the network.  Together they let a candidate ``(layer, error bound)``
evaluation recompute only the layers *downstream* of the perturbed one.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np
from scipy import sparse as sp

from repro.nn.layers import Dense, Layer, Softmax
from repro.nn.sparse import SparseWeight
from repro.utils.errors import ValidationError

__all__ = ["Network", "topk_counts"]


def topk_counts(
    probs: np.ndarray, labels: np.ndarray, topk: Sequence[int]
) -> Dict[int, int]:
    """Per-k hit counts of a batch of class probabilities.

    Shared by :meth:`Network.evaluate` and the assessment engine so that both
    paths count hits with bit-identical tie-breaking (``np.argpartition``
    order is deterministic but unspecified; using one implementation keeps
    full-forward and checkpoint-resumed evaluations exactly comparable).
    """
    labels = np.asarray(labels)
    counts = {int(k): 0 for k in topk}
    if probs.shape[0] == 0:
        return counts
    max_k = max(counts)
    # top-k indices per row (unordered within the top set, which is all
    # top-k accuracy needs).
    k_eff = min(max_k, probs.shape[1])
    top = np.argpartition(-probs, kth=k_eff - 1, axis=1)[:, :k_eff]
    ranked = np.take_along_axis(
        top, np.argsort(-np.take_along_axis(probs, top, axis=1), axis=1), axis=1
    )
    for k in counts:
        hits = (ranked[:, : min(k, k_eff)] == labels[:, None]).any(axis=1)
        counts[k] = int(hits.sum())
    return counts


class Network:
    """A feed-forward network as an ordered list of named layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "network") -> None:
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate layer names in network: {names}")
        self.name = name
        self.layers: List[Layer] = list(layers)

    # -- structure --------------------------------------------------------
    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def layer_names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    def fc_layers(self) -> List[Dense]:
        """The fully connected layers, in forward order (what DeepSZ compresses)."""
        return [layer for layer in self.layers if isinstance(layer, Dense)]

    def fc_layer_names(self) -> List[str]:
        return [layer.name for layer in self.fc_layers()]

    def parameter_count(self) -> int:
        return int(sum(layer.parameter_count() for layer in self.layers))

    def parameter_bytes(self) -> int:
        return int(sum(layer.parameter_bytes() for layer in self.layers))

    def fc_parameter_bytes(self) -> int:
        return int(sum(layer.parameter_bytes() for layer in self.fc_layers()))

    def sparse_fc_layers(self) -> List[Dense]:
        """The fc layers currently running in compressed-domain (sparse) mode."""
        return [layer for layer in self.fc_layers() if layer.is_sparse]

    # -- weights ----------------------------------------------------------
    def get_weights(self, layer_name: str) -> np.ndarray:
        """Return the weight matrix of a named layer.

        Dense-mode layers return a reference to the resident matrix; a
        sparse-mode fc layer returns a *materialised* dense copy of its
        compressed weights.
        """
        layer = self[layer_name]
        if isinstance(layer, Dense) and layer.is_sparse:
            return layer.dense_weights()
        if "weight" not in layer.params:
            raise ValidationError(f"layer {layer_name!r} has no weights")
        return layer.params["weight"]

    def set_weights(self, layer_name: str, weights: np.ndarray) -> None:
        """Replace the weight matrix of a named layer (shape must match).

        On a :class:`~repro.nn.layers.Dense` layer this installs dense
        weights — leaving sparse mode if it was active.
        """
        layer = self[layer_name]
        if isinstance(layer, Dense):
            layer.set_dense_weights(weights)
            return
        current = layer.params.get("weight")
        if current is None:
            raise ValidationError(f"layer {layer_name!r} has no weights")
        weights = np.asarray(weights, dtype=np.float32)
        if weights.shape != current.shape:
            raise ValidationError(
                f"weight shape mismatch for {layer_name!r}: "
                f"expected {current.shape}, got {weights.shape}"
            )
        layer.params["weight"] = weights.copy()

    def set_sparse_weights(self, layer_name: str, weight) -> None:
        """Switch a named fc layer to compressed-domain (sparse) execution.

        ``weight`` may be a :class:`~repro.nn.sparse.SparseWeight`, a SciPy
        sparse matrix, or a two-array :class:`~repro.pruning.SparseLayer`.
        """
        layer = self[layer_name]
        if not isinstance(layer, Dense):
            raise ValidationError(
                f"sparse weights require a Dense layer, got "
                f"{type(layer).__name__} for {layer_name!r}"
            )
        layer.set_sparse_weights(weight)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters as a flat ``{layer.param: array}`` mapping (copies).

        Sparse-mode fc layers export their weight *densified*, so a state
        dict round-trips regardless of execution mode.
        """
        out: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            if isinstance(layer, Dense) and layer.is_sparse:
                out[f"{layer.name}.weight"] = layer.dense_weights()
            for key, value in layer.params.items():
                out[f"{layer.name}.{key}"] = value.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`state_dict`.

        Loading the ``weight`` of a sparse-mode fc layer installs it as
        dense weights (the layer leaves sparse mode).
        """
        for layer in self.layers:
            keys = set(layer.params)
            if isinstance(layer, Dense) and layer.is_sparse:
                keys.add("weight")
            for key in sorted(keys):
                full = f"{layer.name}.{key}"
                if full not in state:
                    raise ValidationError(f"state dict is missing parameter {full!r}")
                value = np.asarray(state[full], dtype=np.float32)
                if key == "weight" and isinstance(layer, Dense) and layer.is_sparse:
                    layer.set_dense_weights(value)
                    continue
                if value.shape != layer.params[key].shape:
                    raise ValidationError(
                        f"shape mismatch for {full!r}: expected "
                        f"{layer.params[key].shape}, got {value.shape}"
                    )
                layer.params[key] = value.copy()

    def clone(self) -> "Network":
        """Deep copy (used to build reconstructed networks without touching the original)."""
        return copy.deepcopy(self)

    # -- execution --------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def layer_index(self, layer_name: str) -> int:
        """Position of a named layer in forward order."""
        for i, layer in enumerate(self.layers):
            if layer.name == layer_name:
                return i
        raise KeyError(f"no layer named {layer_name!r} in network {self.name!r}")

    def forward_to(self, layer_name: str, x: np.ndarray) -> np.ndarray:
        """Activations *entering* ``layer_name`` (the checkpoint the
        assessment engine reuses across that layer's candidates)."""
        stop = self.layer_index(layer_name)
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers[:stop]:
            out = layer.forward(out, training=False)
        return out

    def forward_collect(
        self, x: np.ndarray, capture: Iterable[str]
    ) -> tuple[np.ndarray, Dict[str, np.ndarray]]:
        """One forward pass that checkpoints the inputs of several layers.

        Returns ``(output, {layer_name: input_activations})``.  A single pass
        is enough to seed the activation-reuse cache for every assessed layer
        at once, instead of one truncated pass per layer.
        """
        wanted = set(capture)
        unknown = wanted - set(self.layer_names())
        if unknown:
            raise ValidationError(f"cannot capture unknown layers: {sorted(unknown)}")
        checkpoints: Dict[str, np.ndarray] = {}
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            if layer.name in wanted:
                checkpoints[layer.name] = out
            out = layer.forward(out, training=False)
        return out, checkpoints

    def forward_from(
        self,
        layer_name: str,
        activations: np.ndarray,
        *,
        weight_override: "np.ndarray | SparseWeight | sp.spmatrix | None" = None,
    ) -> np.ndarray:
        """Resume the forward pass from the input of ``layer_name``.

        ``weight_override`` substitutes the weight matrix of the resumed
        layer *functionally* — the network is never mutated, so concurrent
        candidate evaluations can share one network object.  Only
        :class:`~repro.nn.layers.Dense` layers support an override (they are
        the layers DeepSZ compresses).  The override may be a dense matrix
        or a sparse one (:class:`~repro.nn.sparse.SparseWeight`, SciPy
        sparse, or a two-array SparseLayer), independent of the resumed
        layer's own weight mode.
        """
        start = self.layer_index(layer_name)
        out = np.asarray(activations, dtype=np.float32)
        first = self.layers[start]
        if weight_override is not None:
            if not isinstance(first, Dense):
                raise ValidationError(
                    f"weight_override requires a Dense layer, got "
                    f"{type(first).__name__} for {layer_name!r}"
                )
            expected = (first.out_features, first.in_features)
            if not isinstance(weight_override, np.ndarray) and (
                isinstance(weight_override, SparseWeight)
                or sp.issparse(weight_override)
                # Duck-typed SparseLayer (all three attributes, so plain
                # sequences with an .index *method* stay on the dense path).
                or (
                    hasattr(weight_override, "index")
                    and hasattr(weight_override, "data")
                    and hasattr(weight_override, "shape")
                )
            ):
                sparse = SparseWeight.coerce(weight_override)
                if sparse.shape != expected:
                    raise ValidationError(
                        f"weight_override shape mismatch for {layer_name!r}: "
                        f"expected {expected}, got {sparse.shape}"
                    )
                # Same arithmetic as the sparse Dense.forward path.
                out = sparse.matmul(out) + first.params["bias"]
            else:
                weight = np.asarray(weight_override, dtype=np.float32)
                if weight.shape != expected:
                    raise ValidationError(
                        f"weight_override shape mismatch for {layer_name!r}: "
                        f"expected {expected}, got {weight.shape}"
                    )
                # Same arithmetic as Dense.forward, without touching its params.
                out = out @ weight.T + first.params["bias"]
        else:
            out = first.forward(out, training=False)
        for layer in self.layers[start + 1 :]:
            out = layer.forward(out, training=False)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def logits(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass that stops before a trailing Softmax layer (for the loss)."""
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            if isinstance(layer, Softmax):
                continue
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class labels for a batch of inputs."""
        preds = []
        for start in range(0, len(x), batch_size):
            probs = self.forward(x[start : start + batch_size], training=False)
            preds.append(np.argmax(probs, axis=1))
        return np.concatenate(preds) if preds else np.zeros(0, dtype=np.int64)

    def evaluate(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 256,
        topk: Iterable[int] = (1,),
    ) -> Dict[int, float]:
        """Top-k accuracies on a labelled dataset.

        Returns a mapping ``{k: accuracy}`` with accuracies in [0, 1].
        """
        labels = np.asarray(labels)
        if len(x) != len(labels):
            raise ValidationError("inputs and labels must have the same length")
        topk = sorted(set(int(k) for k in topk))
        if not topk or topk[0] < 1:
            raise ValidationError("topk must contain positive integers")
        correct = {k: 0 for k in topk}
        total = len(labels)
        if total == 0:
            return {k: 0.0 for k in topk}
        for start in range(0, total, batch_size):
            probs = self.forward(x[start : start + batch_size], training=False)
            counts = topk_counts(probs, labels[start : start + batch_size], topk)
            for k in topk:
                correct[k] += counts[k]
        return {k: correct[k] / total for k in topk}

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy in [0, 1]."""
        return self.evaluate(x, labels, batch_size=batch_size, topk=(1,))[1]
