"""Sequential network container.

A :class:`Network` is the object DeepSZ operates on: it exposes the forward
pass, top-k accuracy evaluation, and — crucially for the error-bound
assessment — named access to the fc-layer weight matrices so that a single
layer can be swapped for its decompressed reconstruction while all other
layers stay untouched.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.nn.layers import Dense, Layer, Softmax
from repro.utils.errors import ValidationError

__all__ = ["Network"]


class Network:
    """A feed-forward network as an ordered list of named layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "network") -> None:
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate layer names in network: {names}")
        self.name = name
        self.layers: List[Layer] = list(layers)

    # -- structure --------------------------------------------------------
    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def layer_names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    def fc_layers(self) -> List[Dense]:
        """The fully connected layers, in forward order (what DeepSZ compresses)."""
        return [layer for layer in self.layers if isinstance(layer, Dense)]

    def fc_layer_names(self) -> List[str]:
        return [layer.name for layer in self.fc_layers()]

    def parameter_count(self) -> int:
        return int(sum(layer.parameter_count() for layer in self.layers))

    def parameter_bytes(self) -> int:
        return int(sum(layer.parameter_bytes() for layer in self.layers))

    def fc_parameter_bytes(self) -> int:
        return int(sum(layer.parameter_bytes() for layer in self.fc_layers()))

    # -- weights ----------------------------------------------------------
    def get_weights(self, layer_name: str) -> np.ndarray:
        """Return (a reference to) the weight matrix of a named layer."""
        layer = self[layer_name]
        if "weight" not in layer.params:
            raise ValidationError(f"layer {layer_name!r} has no weights")
        return layer.params["weight"]

    def set_weights(self, layer_name: str, weights: np.ndarray) -> None:
        """Replace the weight matrix of a named layer (shape must match)."""
        layer = self[layer_name]
        current = layer.params.get("weight")
        if current is None:
            raise ValidationError(f"layer {layer_name!r} has no weights")
        weights = np.asarray(weights, dtype=np.float32)
        if weights.shape != current.shape:
            raise ValidationError(
                f"weight shape mismatch for {layer_name!r}: "
                f"expected {current.shape}, got {weights.shape}"
            )
        layer.params["weight"] = weights.copy()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters as a flat ``{layer.param: array}`` mapping (copies)."""
        out: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, value in layer.params.items():
                out[f"{layer.name}.{key}"] = value.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`state_dict`."""
        for layer in self.layers:
            for key in layer.params:
                full = f"{layer.name}.{key}"
                if full not in state:
                    raise ValidationError(f"state dict is missing parameter {full!r}")
                value = np.asarray(state[full], dtype=np.float32)
                if value.shape != layer.params[key].shape:
                    raise ValidationError(
                        f"shape mismatch for {full!r}: expected "
                        f"{layer.params[key].shape}, got {value.shape}"
                    )
                layer.params[key] = value.copy()

    def clone(self) -> "Network":
        """Deep copy (used to build reconstructed networks without touching the original)."""
        return copy.deepcopy(self)

    # -- execution --------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def logits(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass that stops before a trailing Softmax layer (for the loss)."""
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            if isinstance(layer, Softmax):
                continue
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted class labels for a batch of inputs."""
        preds = []
        for start in range(0, len(x), batch_size):
            probs = self.forward(x[start : start + batch_size], training=False)
            preds.append(np.argmax(probs, axis=1))
        return np.concatenate(preds) if preds else np.zeros(0, dtype=np.int64)

    def evaluate(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 256,
        topk: Iterable[int] = (1,),
    ) -> Dict[int, float]:
        """Top-k accuracies on a labelled dataset.

        Returns a mapping ``{k: accuracy}`` with accuracies in [0, 1].
        """
        labels = np.asarray(labels)
        if len(x) != len(labels):
            raise ValidationError("inputs and labels must have the same length")
        topk = sorted(set(int(k) for k in topk))
        if not topk or topk[0] < 1:
            raise ValidationError("topk must contain positive integers")
        correct = {k: 0 for k in topk}
        total = len(labels)
        if total == 0:
            return {k: 0.0 for k in topk}
        max_k = topk[-1]
        for start in range(0, total, batch_size):
            probs = self.forward(x[start : start + batch_size], training=False)
            batch_labels = labels[start : start + batch_size]
            # top-k indices per row (unordered within the top set, which is
            # all top-k accuracy needs).
            k_eff = min(max_k, probs.shape[1])
            top = np.argpartition(-probs, kth=k_eff - 1, axis=1)[:, :k_eff]
            ranked = np.take_along_axis(
                top, np.argsort(-np.take_along_axis(probs, top, axis=1), axis=1), axis=1
            )
            for k in topk:
                hits = (ranked[:, : min(k, k_eff)] == batch_labels[:, None]).any(axis=1)
                correct[k] += int(hits.sum())
        return {k: correct[k] / total for k in topk}

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy in [0, 1]."""
        return self.evaluate(x, labels, batch_size=batch_size, topk=(1,))[1]
