"""Serialization of network parameters.

DeepSZ needs to measure the size of the *uncompressed* model (Table 2's
"Original Size" column is simply float32 bytes of the fc weight matrices) and
to ship reconstructed weights around between processes in the parallel
assessment harness.  Parameters are serialised with the shared named-section
container; architecture is carried as (builder name, kwargs) when a network
was created through :func:`repro.nn.models.build_model`.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict

import numpy as np

from repro.nn.network import Network
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError, ValidationError

__all__ = [
    "state_dict_to_bytes",
    "state_dict_from_bytes",
    "network_to_bytes",
    "network_from_bytes",
    "save_network",
    "load_network",
]

_MAGIC = "repro-nn-state-v1"


def state_dict_to_bytes(state: Dict[str, np.ndarray]) -> bytes:
    """Serialise a ``{name: array}`` parameter mapping.

    Per-parameter CRC32s ride in the metadata (same convention as the
    compressed-model container and the ``.dsz`` archive), so a bit-rotted
    cached-weights file fails loudly with the parameter named instead of
    silently loading garbage weights."""
    sections = {}
    shapes = {}
    dtypes = {}
    crcs = {}
    for name, array in state.items():
        arr = np.ascontiguousarray(array)
        payload = arr.tobytes()
        sections[name] = payload
        shapes[name] = list(arr.shape)
        dtypes[name] = arr.dtype.str
        crcs[name] = zlib.crc32(payload)
    return write_named_sections(
        sections,
        meta={"magic": _MAGIC, "shapes": shapes, "dtypes": dtypes, "crc32": crcs},
    )


def state_dict_from_bytes(blob: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`state_dict_to_bytes`.

    Blobs written before the checksums existed carry no ``crc32`` metadata
    and load without verification."""
    meta, sections = read_named_sections(blob)
    if meta.get("magic") != _MAGIC:
        raise DecompressionError("not a serialised parameter blob (bad magic)")
    shapes = meta["shapes"]
    dtypes = meta["dtypes"]
    crcs = meta.get("crc32", {})
    out: Dict[str, np.ndarray] = {}
    for name, payload in sections.items():
        if name in crcs and zlib.crc32(payload) != int(crcs[name]):
            raise DecompressionError(
                f"parameter {name!r} failed CRC32 integrity verification "
                "(weights file corrupted?)"
            )
        arr = np.frombuffer(payload, dtype=np.dtype(dtypes[name]))
        out[name] = arr.reshape(shapes[name]).copy()
    return out


def network_to_bytes(network: Network) -> bytes:
    """Serialise a network's parameters (architecture is not embedded)."""
    return state_dict_to_bytes(network.state_dict())


def network_from_bytes(blob: bytes, into: Network) -> Network:
    """Load serialised parameters into an existing compatible network."""
    into.load_state_dict(state_dict_from_bytes(blob))
    return into


def save_network(network: Network, path: str | os.PathLike) -> int:
    """Write the network parameters to ``path``; returns the byte count."""
    blob = network_to_bytes(network)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def load_network(path: str | os.PathLike, into: Network) -> Network:
    """Load parameters saved by :func:`save_network` into ``into``."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if not blob:
        raise ValidationError(f"{os.fspath(path)!r} is empty")
    return network_from_bytes(blob, into)
