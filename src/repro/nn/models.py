"""Builders for the paper's networks.

Two tiers are provided:

* **Trainable models** sized for the synthetic datasets and a CPU: the two
  LeNets at their real dimensions (they are tiny), and ``alexnet_mini`` /
  ``vgg16_mini`` which keep the layer *topology* (conv stack followed by
  three fc-layers named fc6/fc7/fc8, with fc6 much larger than fc8) but use
  reduced channel counts and 32x32 inputs so that training and the
  per-error-bound accuracy assessments finish in seconds.  Every
  accuracy-dependent experiment (Figures 3/5/6, Tables 3/5) runs on these.

* **Paper-scale fc weights** synthesised by :func:`synthesize_fc_weights`
  for the compression-only experiments (Figure 2, Table 2 size arithmetic),
  which need weight arrays at the real AlexNet / VGG-16 dimensions but no
  forward pass.

All builders take a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.network import Network
from repro.nn.specs import FcLayerSpec, NetworkSpec, get_spec
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = [
    "lenet_300_100",
    "lenet5",
    "alexnet_mini",
    "vgg16_mini",
    "build_model",
    "available_models",
    "mini_spec_for",
    "synthesize_fc_weights",
]


def lenet_300_100(num_classes: int = 10, seed: int | None = None) -> Network:
    """LeNet-300-100: 784 -> 300 -> 100 -> ``num_classes`` (all fc)."""
    rng = make_rng(seed)
    return Network(
        [
            Flatten("flatten"),
            Dense("ip1", 784, 300, rng=rng),
            ReLU("relu1"),
            Dense("ip2", 300, 100, rng=rng),
            ReLU("relu2"),
            Dense("ip3", 100, num_classes, rng=rng),
            Softmax("prob"),
        ],
        name="LeNet-300-100",
    )


def lenet5(num_classes: int = 10, seed: int | None = None) -> Network:
    """LeNet-5 (Caffe variant): 2 conv + 2 fc, MNIST-shaped 1x28x28 input."""
    rng = make_rng(seed)
    return Network(
        [
            Conv2D("conv1", 1, 20, 5, rng=rng),
            MaxPool2D("pool1", 2),
            ReLU("relu_c1"),
            Conv2D("conv2", 20, 50, 5, rng=rng),
            MaxPool2D("pool2", 2),
            ReLU("relu_c2"),
            Flatten("flatten"),
            Dense("ip1", 800, 500, rng=rng),
            ReLU("relu1"),
            Dense("ip2", 500, num_classes, rng=rng),
            Softmax("prob"),
        ],
        name="LeNet-5",
    )


def alexnet_mini(num_classes: int = 20, seed: int | None = None) -> Network:
    """AlexNet with the 5-conv / 3-fc topology at 3x32x32 scale.

    fc6 (384 x 768) dominates the fc storage, fc7 (192 x 384) is mid-sized
    and fc8 (num_classes x 192) is smallest — the same ordering the error
    bound optimizer exploits on real AlexNet.  Channel counts are kept small
    so CPU training finishes in about a minute.
    """
    rng = make_rng(seed)
    return Network(
        [
            Conv2D("conv1", 3, 24, 3, padding=1, rng=rng),
            ReLU("relu_c1"),
            MaxPool2D("pool1", 2),
            Conv2D("conv2", 24, 48, 3, padding=1, rng=rng),
            ReLU("relu_c2"),
            MaxPool2D("pool2", 2),
            Conv2D("conv3", 48, 64, 3, padding=1, rng=rng),
            ReLU("relu_c3"),
            Conv2D("conv4", 64, 64, 3, padding=1, rng=rng),
            ReLU("relu_c4"),
            Conv2D("conv5", 64, 48, 3, padding=1, rng=rng),
            ReLU("relu_c5"),
            MaxPool2D("pool5", 2),
            Flatten("flatten"),
            Dense("fc6", 48 * 4 * 4, 384, rng=rng),
            ReLU("relu6"),
            Dropout("drop6", 0.5, rng=rng),
            Dense("fc7", 384, 192, rng=rng),
            ReLU("relu7"),
            Dropout("drop7", 0.5, rng=rng),
            Dense("fc8", 192, num_classes, rng=rng),
            Softmax("prob"),
        ],
        name="AlexNet-mini",
    )


def vgg16_mini(num_classes: int = 20, seed: int | None = None) -> Network:
    """VGG-16 style conv blocks + fc6/fc7/fc8 at 3x32x32 scale.

    Six 3x3 conv layers in three blocks (instead of thirteen in five blocks)
    keep the CPU forward pass fast while preserving the property DeepSZ
    relies on: the three fc-layers dominate storage and fc6 is by far the
    largest (roughly 12x fc7, mirroring real VGG-16's 6x).
    """
    rng = make_rng(seed)
    layers = []
    channels = [(3, 16), (16, 16), (16, 32), (32, 32), (32, 48), (48, 48)]
    pool_after = {2, 4, 6}
    for i, (cin, cout) in enumerate(channels, start=1):
        layers.append(Conv2D(f"conv{i}", cin, cout, 3, padding=1, rng=rng))
        layers.append(ReLU(f"relu_c{i}"))
        if i in pool_after:
            layers.append(MaxPool2D(f"pool{i}", 2))
    # Pools fire after conv2, conv4 and conv6: 32 -> 16 -> 8 -> 4, so the
    # flattened feature vector is 48 channels x 4 x 4 = 768 values.
    layers += [
        Flatten("flatten"),
        Dense("fc6", 48 * 4 * 4, 512, rng=rng),
        ReLU("relu6"),
        Dropout("drop6", 0.5, rng=rng),
        Dense("fc7", 512, 160, rng=rng),
        ReLU("relu7"),
        Dropout("drop7", 0.5, rng=rng),
        Dense("fc8", 160, num_classes, rng=rng),
        Softmax("prob"),
    ]
    return Network(layers, name="VGG-16-mini")


_BUILDERS: Dict[str, Callable[..., Network]] = {
    "lenet-300-100": lenet_300_100,
    "lenet-5": lenet5,
    "alexnet-mini": alexnet_mini,
    "vgg-16-mini": vgg16_mini,
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, **kwargs) -> Network:
    """Build a trainable model by name (see :func:`available_models`)."""
    key = name.lower()
    if key not in _BUILDERS:
        raise ValidationError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[key](**kwargs)


def mini_spec_for(network: Network) -> NetworkSpec:
    """A :class:`NetworkSpec` describing the fc-layers of a built (mini) network.

    Lets the size-accounting code treat trained mini models and paper-scale
    specs uniformly.
    """
    fc_layers = [
        FcLayerSpec(layer.name, layer.out_features, layer.in_features)
        for layer in network.fc_layers()
    ]
    return NetworkSpec(name=network.name, dataset="synthetic", conv_layers=[], fc_layers=fc_layers)


def synthesize_fc_weights(
    network: str | NetworkSpec,
    layer: str,
    *,
    seed: int | None = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Synthesise a trained-looking weight matrix at paper-scale dimensions.

    Trained fc-layer weights of AlexNet/VGG-16 are well described by a
    zero-centred, heavy-shouldered distribution with standard deviation of a
    few 1e-2 and essentially all mass inside (-0.3, 0.3) (Section 5.1 of the
    paper).  We draw from a two-component Gaussian mixture matching that
    shape.  ``scale`` < 1 shrinks both matrix dimensions proportionally (used
    by the reduced-scale benchmark mode).
    """
    spec = network if isinstance(network, NetworkSpec) else get_spec(network)
    fc = spec.fc_layer(layer)
    rows = max(1, int(round(fc.rows * scale)))
    cols = max(1, int(round(fc.cols * scale)))
    rng = make_rng(seed)
    core = rng.normal(0.0, 0.012, size=rows * cols)
    shoulder = rng.normal(0.0, 0.045, size=rows * cols)
    mix = rng.random(rows * cols) < 0.2
    weights = np.where(mix, shoulder, core)
    return np.clip(weights, -0.3, 0.3).astype(np.float32).reshape(rows, cols)
