"""Loss functions for training."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["softmax_cross_entropy"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        (N, num_classes) raw scores.
    labels:
        (N,) integer class labels.

    Returns
    -------
    (loss, grad):
        Mean loss over the batch and the gradient of that mean loss with
        respect to ``logits`` (shape (N, num_classes)).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValidationError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValidationError("labels must be a 1-D array matching the batch size")
    n, k = logits.shape
    if labels.min() < 0 or labels.max() >= k:
        raise ValidationError("labels out of range for the logit width")

    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    loss = float(-log_probs[np.arange(n), labels].mean())

    probs = np.exp(log_probs)
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)
