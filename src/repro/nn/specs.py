"""Exact architecture specifications for the paper's four networks (Table 1).

These specs carry the *paper-scale* layer dimensions — e.g. AlexNet fc6 is
4096 x 9216 and VGG-16 fc6 is 4096 x 25088 — and are used for all storage
accounting (Table 1, Table 2) and for the full-scale compression-only
experiments (Figure 2), independent of the smaller trainable "mini" models in
:mod:`repro.nn.models`.

The numbers reproduce the paper's Table 1/Table 2 size arithmetic: a layer's
original size is ``rows * cols * 4`` bytes (float32), conv sizes come from the
standard filter shapes of each architecture, and the fc share of storage
matches the 89.4%–100% range the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.errors import ValidationError

__all__ = [
    "FcLayerSpec",
    "ConvLayerSpec",
    "NetworkSpec",
    "lenet_300_100_spec",
    "lenet5_spec",
    "alexnet_spec",
    "vgg16_spec",
    "all_specs",
    "get_spec",
    "PAPER_PRUNING_RATIOS",
    "PAPER_EXPECTED_ACCURACY_LOSS",
]


@dataclass(frozen=True)
class FcLayerSpec:
    """A fully connected layer: ``rows x cols`` float32 weights (+ bias)."""

    name: str
    rows: int  #: output neurons
    cols: int  #: input neurons

    @property
    def weight_count(self) -> int:
        return self.rows * self.cols

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * 4

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)


@dataclass(frozen=True)
class ConvLayerSpec:
    """A convolutional layer: ``out x in x k x k`` float32 filters."""

    name: str
    out_channels: int
    in_channels: int
    kernel_size: int

    @property
    def weight_count(self) -> int:
        return self.out_channels * self.in_channels * self.kernel_size * self.kernel_size

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * 4


@dataclass(frozen=True)
class NetworkSpec:
    """Paper-scale description of one evaluated network."""

    name: str
    dataset: str
    conv_layers: List[ConvLayerSpec]
    fc_layers: List[FcLayerSpec]

    def fc_layer(self, name: str) -> FcLayerSpec:
        for layer in self.fc_layers:
            if layer.name == name:
                return layer
        raise ValidationError(f"{self.name} has no fc-layer named {name!r}")

    @property
    def fc_layer_names(self) -> List[str]:
        return [layer.name for layer in self.fc_layers]

    @property
    def conv_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.conv_layers)

    @property
    def fc_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.fc_layers)

    @property
    def total_bytes(self) -> int:
        return self.conv_bytes + self.fc_bytes

    @property
    def fc_fraction(self) -> float:
        """Fraction of total parameter storage held by the fc-layers."""
        total = self.total_bytes
        return self.fc_bytes / total if total else 0.0


def lenet_300_100_spec() -> NetworkSpec:
    """LeNet-300-100 on MNIST: three fc-layers, no convolutions."""
    return NetworkSpec(
        name="LeNet-300-100",
        dataset="MNIST",
        conv_layers=[],
        fc_layers=[
            FcLayerSpec("ip1", 300, 784),
            FcLayerSpec("ip2", 100, 300),
            FcLayerSpec("ip3", 10, 100),
        ],
    )


def lenet5_spec() -> NetworkSpec:
    """LeNet-5 (Caffe variant) on MNIST: two conv layers + two fc-layers.

    The paper's Table 1 lists three conv layers for LeNet-5; the Caffe model
    the size arithmetic corresponds to (ip1 = 500 x 800) has two, and the two
    extra-vs-missing conv layers change the fc storage share by about one
    percentage point (94.1% here vs the paper's 95.3%).
    """
    return NetworkSpec(
        name="LeNet-5",
        dataset="MNIST",
        conv_layers=[
            ConvLayerSpec("conv1", 20, 1, 5),
            ConvLayerSpec("conv2", 50, 20, 5),
        ],
        fc_layers=[
            FcLayerSpec("ip1", 500, 800),
            FcLayerSpec("ip2", 10, 500),
        ],
    )


def alexnet_spec() -> NetworkSpec:
    """AlexNet on ImageNet (grouped conv2/4/5, as in the original)."""
    return NetworkSpec(
        name="AlexNet",
        dataset="ImageNet",
        conv_layers=[
            ConvLayerSpec("conv1", 96, 3, 11),
            ConvLayerSpec("conv2", 256, 48, 5),
            ConvLayerSpec("conv3", 384, 256, 3),
            ConvLayerSpec("conv4", 384, 192, 3),
            ConvLayerSpec("conv5", 256, 192, 3),
        ],
        fc_layers=[
            FcLayerSpec("fc6", 4096, 9216),
            FcLayerSpec("fc7", 4096, 4096),
            FcLayerSpec("fc8", 1000, 4096),
        ],
    )


def vgg16_spec() -> NetworkSpec:
    """VGG-16 on ImageNet: thirteen conv layers + three fc-layers."""
    cfg = [
        ("conv1_1", 64, 3),
        ("conv1_2", 64, 64),
        ("conv2_1", 128, 64),
        ("conv2_2", 128, 128),
        ("conv3_1", 256, 128),
        ("conv3_2", 256, 256),
        ("conv3_3", 256, 256),
        ("conv4_1", 512, 256),
        ("conv4_2", 512, 512),
        ("conv4_3", 512, 512),
        ("conv5_1", 512, 512),
        ("conv5_2", 512, 512),
        ("conv5_3", 512, 512),
    ]
    return NetworkSpec(
        name="VGG-16",
        dataset="ImageNet",
        conv_layers=[ConvLayerSpec(n, o, i, 3) for n, o, i in cfg],
        fc_layers=[
            FcLayerSpec("fc6", 4096, 25088),
            FcLayerSpec("fc7", 4096, 4096),
            FcLayerSpec("fc8", 1000, 4096),
        ],
    )


def all_specs() -> List[NetworkSpec]:
    """The four evaluated networks, in the paper's order."""
    return [lenet_300_100_spec(), lenet5_spec(), alexnet_spec(), vgg16_spec()]


def get_spec(name: str) -> NetworkSpec:
    """Look up a spec by (case-insensitive) network name."""
    for spec in all_specs():
        if spec.name.lower() == name.lower():
            return spec
    raise ValidationError(f"unknown network spec {name!r}")


#: Per-layer pruning ratios (fraction of weights kept) the paper adopts from
#: Deep Compression (Tables 2a-2d).
PAPER_PRUNING_RATIOS: Dict[str, Dict[str, float]] = {
    "LeNet-300-100": {"ip1": 0.08, "ip2": 0.09, "ip3": 0.26},
    "LeNet-5": {"ip1": 0.08, "ip2": 0.19},
    "AlexNet": {"fc6": 0.09, "fc7": 0.09, "fc8": 0.25},
    "VGG-16": {"fc6": 0.03, "fc7": 0.04, "fc8": 0.24},
}

#: Expected (user-set) loss of inference accuracy used in Section 5.1.
PAPER_EXPECTED_ACCURACY_LOSS: Dict[str, float] = {
    "LeNet-300-100": 0.002,
    "LeNet-5": 0.002,
    "AlexNet": 0.004,
    "VGG-16": 0.004,
}
