"""A small "model zoo": train-once, cache-on-disk models for the experiments.

Every benchmark and example needs the same artifacts — a synthetic dataset,
a trained network, and its pruned counterpart — and training the conv models
on a CPU takes a minute or two.  The zoo builds each artifact once and caches
the parameters under a cache directory (``REPRO_CACHE`` environment variable,
default ``~/.cache/repro-deepsz``), keyed by the model name and the recipe
hash, so that re-running a benchmark re-uses the trained weights.

The recipes (dataset sizes, epochs, pruning ratios) are the reproduction's
equivalent of the paper's "well-trained Caffe models": they are chosen so
that every network reaches its accuracy plateau on the synthetic task and
survives pruning at the paper's per-layer ratios without accuracy loss.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.data import Dataset, imagenet_like, mnist_like, train_test_split
from repro.nn import models
from repro.nn.network import Network
from repro.nn.serialize import load_network, save_network
from repro.nn.specs import PAPER_PRUNING_RATIOS
from repro.nn.train import SGDConfig, SGDTrainer
from repro.pruning import PrunedNetwork, PruningConfig, prune_network
from repro.utils.errors import ValidationError

__all__ = ["ModelRecipe", "RECIPES", "cache_dir", "load_dataset", "trained_model", "pruned_model"]


@dataclass(frozen=True)
class ModelRecipe:
    """Everything needed to reproduce one trained + pruned model."""

    model: str  #: builder name accepted by repro.nn.models.build_model
    dataset: str  #: "mnist-like" or "imagenet-like"
    samples_per_class: int
    num_classes: int
    epochs: int
    learning_rate: float
    weight_decay: float = 1e-3
    batch_size: int = 64
    retrain_epochs: int = 4
    retrain_learning_rate: float = 0.02
    pruning_ratios: Dict[str, float] = field(default_factory=dict)
    seed: int = 100

    def fingerprint(self) -> str:
        """Stable hash of the recipe (cache key component)."""
        blob = json.dumps(self.__dict__, sort_keys=True, default=str).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


#: Recipes for the paper's four networks (mini variants for the conv nets).
RECIPES: Dict[str, ModelRecipe] = {
    "lenet-300-100": ModelRecipe(
        model="lenet-300-100",
        dataset="mnist-like",
        samples_per_class=300,
        num_classes=10,
        epochs=8,
        learning_rate=0.03,
        pruning_ratios=dict(PAPER_PRUNING_RATIOS["LeNet-300-100"]),
        seed=101,
    ),
    "lenet-5": ModelRecipe(
        model="lenet-5",
        dataset="mnist-like",
        samples_per_class=300,
        num_classes=10,
        epochs=5,
        learning_rate=0.03,
        retrain_epochs=3,
        pruning_ratios=dict(PAPER_PRUNING_RATIOS["LeNet-5"]),
        seed=102,
    ),
    "alexnet-mini": ModelRecipe(
        model="alexnet-mini",
        dataset="imagenet-like",
        samples_per_class=150,
        num_classes=15,
        epochs=9,
        learning_rate=0.04,
        batch_size=96,
        retrain_epochs=3,
        pruning_ratios=dict(PAPER_PRUNING_RATIOS["AlexNet"]),
        seed=103,
    ),
    "vgg-16-mini": ModelRecipe(
        model="vgg-16-mini",
        dataset="imagenet-like",
        samples_per_class=150,
        num_classes=15,
        epochs=11,
        learning_rate=0.045,
        batch_size=96,
        retrain_epochs=4,
        pruning_ratios=dict(PAPER_PRUNING_RATIOS["VGG-16"]),
        seed=104,
    ),
}

#: Map from zoo model names to the paper network whose role they play.
PAPER_NAME: Dict[str, str] = {
    "lenet-300-100": "LeNet-300-100",
    "lenet-5": "LeNet-5",
    "alexnet-mini": "AlexNet",
    "vgg-16-mini": "VGG-16",
}


def cache_dir() -> Path:
    """Directory used for cached trained parameters."""
    root = os.environ.get("REPRO_CACHE", os.path.join(os.path.expanduser("~"), ".cache", "repro-deepsz"))
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def get_recipe(name: str) -> ModelRecipe:
    try:
        return RECIPES[name]
    except KeyError:
        raise ValidationError(f"unknown zoo model {name!r}; available: {sorted(RECIPES)}") from None


def load_dataset(recipe: ModelRecipe) -> Tuple[Dataset, Dataset]:
    """Build the recipe's dataset and split it into train / test parts."""
    if recipe.dataset == "mnist-like":
        ds = mnist_like(
            samples_per_class=recipe.samples_per_class,
            num_classes=recipe.num_classes,
            seed=recipe.seed,
        )
    elif recipe.dataset == "imagenet-like":
        ds = imagenet_like(
            samples_per_class=recipe.samples_per_class,
            num_classes=recipe.num_classes,
            seed=recipe.seed,
        )
    else:
        raise ValidationError(f"unknown dataset {recipe.dataset!r}")
    return train_test_split(ds, test_fraction=0.3, seed=recipe.seed + 1)


def _build(recipe: ModelRecipe) -> Network:
    return models.build_model(recipe.model, num_classes=recipe.num_classes, seed=recipe.seed + 2)


def trained_model(name: str, *, use_cache: bool = True) -> Tuple[Network, Dataset, Dataset]:
    """A trained network plus its train/test datasets (cached on disk)."""
    recipe = get_recipe(name)
    train, test = load_dataset(recipe)
    network = _build(recipe)
    path = cache_dir() / f"{name}-{recipe.fingerprint()}-trained.bin"
    if use_cache and path.exists():
        load_network(path, network)
        return network, train, test
    trainer = SGDTrainer(
        SGDConfig(
            epochs=recipe.epochs,
            learning_rate=recipe.learning_rate,
            weight_decay=recipe.weight_decay,
            batch_size=recipe.batch_size,
            seed=recipe.seed + 3,
        )
    )
    trainer.train(network, train.images, train.labels)
    if use_cache:
        save_network(network, path)
    return network, train, test


def pruned_model(name: str, *, use_cache: bool = True) -> Tuple[PrunedNetwork, Dataset, Dataset]:
    """A trained-then-pruned network (masked-retrained), cached on disk."""
    recipe = get_recipe(name)
    network, train, test = trained_model(name, use_cache=use_cache)
    path = cache_dir() / f"{name}-{recipe.fingerprint()}-pruned.bin"
    config = PruningConfig(
        ratios=recipe.pruning_ratios,
        retrain=True,
        retrain_config=SGDConfig(
            epochs=recipe.retrain_epochs,
            learning_rate=recipe.retrain_learning_rate,
            weight_decay=1e-4,
            batch_size=recipe.batch_size,
            seed=recipe.seed + 4,
        ),
    )
    if use_cache and path.exists():
        load_network(path, network)
        # The cached weights are already pruned; rebuild the masks and sparse
        # encodings from the stored zero pattern instead of re-thresholding.
        from repro.pruning.sparse_format import encode_sparse

        masks = {
            layer: network.get_weights(layer) != 0 for layer in recipe.pruning_ratios
        }
        sparse = {layer: encode_sparse(network.get_weights(layer)) for layer in recipe.pruning_ratios}
        pruned = PrunedNetwork(network=network, masks=masks, sparse_layers=sparse)
        return pruned, train, test
    pruned = prune_network(
        network, config, train_images=train.images, train_labels=train.labels
    )
    if use_cache:
        save_network(network, path)
    return pruned, train, test
