"""SGD training, including the masked retraining used by network pruning.

The paper's pruning step is "magnitude threshold plus retraining": weights
below a per-layer threshold are zeroed and the network is retrained *with
masks* so the pruned weights stay zero.  :class:`SGDTrainer` implements plain
mini-batch SGD with momentum and optional per-layer boolean masks on the
weight matrices; masked entries receive no updates and are re-zeroed after
every step, which is exactly the Caffe masking trick the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Network
from repro.utils.errors import TrainingError, ValidationError
from repro.utils.rng import make_rng

__all__ = ["SGDConfig", "TrainResult", "SGDTrainer"]


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters for :class:`SGDTrainer`."""

    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    batch_size: int = 64
    epochs: int = 5
    lr_decay: float = 1.0  #: multiplicative LR decay applied per epoch
    shuffle: bool = True
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not (0.0 <= self.momentum < 1.0):
            raise ValidationError("momentum must be in [0, 1)")
        if self.batch_size <= 0 or self.epochs < 0:
            raise ValidationError("batch_size must be positive and epochs non-negative")
        if not (0.0 < self.lr_decay <= 1.0):
            raise ValidationError("lr_decay must be in (0, 1]")


@dataclass
class TrainResult:
    """Per-epoch training history."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


class SGDTrainer:
    """Mini-batch SGD with momentum and optional pruning masks."""

    def __init__(self, config: SGDConfig | None = None) -> None:
        self.config = config or SGDConfig()

    def train(
        self,
        network: Network,
        x: np.ndarray,
        labels: np.ndarray,
        *,
        masks: Optional[Mapping[str, np.ndarray]] = None,
        x_val: Optional[np.ndarray] = None,
        labels_val: Optional[np.ndarray] = None,
    ) -> TrainResult:
        """Train ``network`` in place and return the per-epoch history.

        Parameters
        ----------
        masks:
            Optional mapping ``layer name -> boolean array`` (same shape as
            the layer's weight matrix) marking the weights that are *kept*.
            Masked-out (pruned) weights stay exactly zero throughout.
        """
        cfg = self.config
        x = np.asarray(x, dtype=np.float32)
        labels = np.asarray(labels)
        if len(x) != len(labels):
            raise ValidationError("inputs and labels must have the same length")
        if len(x) == 0:
            raise ValidationError("cannot train on an empty dataset")
        masks = dict(masks or {})
        for name, mask in masks.items():
            expected = network.get_weights(name).shape
            if np.asarray(mask).shape != expected:
                raise ValidationError(
                    f"mask shape {np.asarray(mask).shape} does not match layer "
                    f"{name!r} weights {expected}"
                )
        self._apply_masks(network, masks)

        rng = make_rng(cfg.seed)
        velocity: Dict[str, Dict[str, np.ndarray]] = {
            layer.name: {k: np.zeros_like(v) for k, v in layer.params.items()}
            for layer in network.layers
            if layer.trainable
        }

        result = TrainResult()
        lr = cfg.learning_rate
        n = len(x)
        for epoch in range(cfg.epochs):
            order = rng.permutation(n) if cfg.shuffle else np.arange(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                loss = self._step(network, x[idx], labels[idx], lr, velocity, masks)
                epoch_loss += loss
                batches += 1
            mean_loss = epoch_loss / max(1, batches)
            if not np.isfinite(mean_loss):
                raise TrainingError(
                    f"training diverged at epoch {epoch} (loss={mean_loss}); "
                    "lower the learning rate"
                )
            result.losses.append(mean_loss)
            result.train_accuracies.append(network.accuracy(x[: min(n, 2048)], labels[: min(n, 2048)]))
            if x_val is not None and labels_val is not None:
                result.val_accuracies.append(network.accuracy(x_val, labels_val))
            lr *= cfg.lr_decay
        return result

    # -- internals ---------------------------------------------------------
    def _step(
        self,
        network: Network,
        xb: np.ndarray,
        yb: np.ndarray,
        lr: float,
        velocity: Dict[str, Dict[str, np.ndarray]],
        masks: Mapping[str, np.ndarray],
    ) -> float:
        cfg = self.config
        logits = network.logits(xb, training=True)
        loss, grad = softmax_cross_entropy(logits, yb)
        network.backward(grad)
        for layer in network.layers:
            if not layer.trainable:
                continue
            vel = velocity[layer.name]
            for key, param in layer.params.items():
                g = layer.grads[key]
                if cfg.weight_decay and key == "weight":
                    g = g + cfg.weight_decay * param
                if key == "weight" and layer.name in masks:
                    g = g * masks[layer.name]
                vel[key] = cfg.momentum * vel[key] - lr * g
                param += vel[key].astype(param.dtype)
                if key == "weight" and layer.name in masks:
                    param *= masks[layer.name]
        return loss

    @staticmethod
    def _apply_masks(network: Network, masks: Mapping[str, np.ndarray]) -> None:
        for name, mask in masks.items():
            layer = network[name]
            layer.params["weight"] = layer.params["weight"] * np.asarray(mask, dtype=np.float32)
