"""A NumPy neural-network framework (the Caffe substitute).

DeepSZ only ever needs two things from its deep-learning substrate:

* a **forward pass** over a held-out test set to measure inference accuracy
  with one (or more) fc-layers replaced by their decompressed weights, and
* a **masked retraining** loop used once, during the pruning step.

This package provides both, plus everything needed to build and train the
four networks the paper evaluates (LeNet-300-100, LeNet-5, AlexNet, VGG-16):
layers with forward *and* backward passes, SGD training, model serialization,
and exact architecture specifications used for the Table 1 storage accounting.

Public API highlights
---------------------
* :class:`repro.nn.Network` -- a sequential container with ``forward``,
  ``predict``, ``evaluate`` (top-1 / top-5), named-layer access and weight
  replacement (what the error-bound assessment uses).
* :mod:`repro.nn.models` -- builders for the paper's networks at trainable
  ("mini") and exact paper-scale dimensions.
* :mod:`repro.nn.specs` -- the architecture bookkeeping behind Table 1.
"""

from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.layers import (
    Layer,
    Dense,
    Conv2D,
    ReLU,
    MaxPool2D,
    Flatten,
    Dropout,
    Softmax,
)
from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Network
from repro.nn.sparse import SparseWeight
from repro.nn.train import SGDConfig, SGDTrainer, TrainResult
from repro.nn import models, specs
from repro.nn.serialize import save_network, load_network, network_to_bytes, network_from_bytes

__all__ = [
    "he_init",
    "xavier_init",
    "zeros_init",
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "Softmax",
    "softmax_cross_entropy",
    "Network",
    "SparseWeight",
    "SGDConfig",
    "SGDTrainer",
    "TrainResult",
    "models",
    "specs",
    "save_network",
    "load_network",
    "network_to_bytes",
    "network_from_bytes",
]
