"""Compressed-domain execution of pruned fc-layers (the SparseLinear path).

The paper's artifact is a pruned network whose fc layers sit at ~10%
density, yet a dense ``x @ W.T`` throws that sparsity away: BLAS multiplies
the 90% zeros like any other operand, and the resident weight matrix costs
its full dense footprint.  :class:`SparseWeight` keeps the weight matrix in
SciPy compressed-sparse form and runs the fc matmul directly on it.

Kernel choice
-------------
For ``y = x @ W.T`` with ``W`` of shape (out_features, in_features) the
weight is stored as a **CSC** matrix of ``W`` and the product computed as
``(W_csc @ x.T).T``.  CSC-of-W is structurally CSR-of-``W.T`` — the
traversal streams down each *input* feature's column, which measures
fastest of the SciPy formulations at serving batch sizes (tens of samples):
the batch dimension is then the contiguous inner axis of ``x.T`` column
reads.  Everything stays float32; the result is an ordinary ndarray.

The storage footprint is ``data + indices + indptr`` (8 bytes per stored
entry plus one int32 per input feature), which at 10% density is ~5x below
the dense float32 matrix — that footprint, not the dense ``nbytes``, is
what a :class:`repro.serve.cache.LRUCache` entry is charged in sparse
serving mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse as sp

from repro.utils.errors import ValidationError

__all__ = ["SparseWeight"]


class SparseWeight:
    """An fc weight matrix held in SciPy CSC form for compressed-domain matmuls.

    Immutable by convention: the underlying index/value arrays are marked
    read-only so a cached instance can be shared across request threads the
    same way the serving cache shares read-only dense matrices.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix) -> None:
        if not sp.issparse(matrix):
            raise ValidationError(
                f"SparseWeight needs a scipy sparse matrix, got {type(matrix).__name__}"
            )
        if matrix.ndim != 2:
            raise ValidationError(f"weight matrix must be 2-D, got shape {matrix.shape}")
        csc = matrix.tocsc()
        if csc is matrix:
            csc = csc.copy()  # never freeze the caller's own arrays
        if csc.dtype != np.float32:
            csc = csc.astype(np.float32)
        csc.sort_indices()
        for arr in (csc.data, csc.indices, csc.indptr):
            arr.flags.writeable = False
        self.matrix: sp.csc_matrix = csc

    # -- construction ------------------------------------------------------
    @classmethod
    def from_sparse_layer(cls, layer, data: Optional[np.ndarray] = None) -> "SparseWeight":
        """Build from a two-array :class:`~repro.pruning.SparseLayer` without
        ever materialising the dense matrix (``data`` optionally substitutes
        SZ-decompressed values, exactly like :func:`~repro.pruning.decode_sparse`).

        Every stored entry is kept, padding slots included: a decoded
        layer's values are lossy, so "padding is exactly 0.0" cannot be
        assumed here — and keeping everything makes the operand independent
        of which codec produced the values."""
        from repro.pruning.sparse_format import sparse_to_scipy

        return cls(sparse_to_scipy(layer, data=layer.data if data is None else data))

    @classmethod
    def from_csc_arrays(
        cls,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        *,
        shape: tuple[int, int],
    ) -> "SparseWeight":
        """Wrap pre-built CSC arrays **without copying** them.

        The shared-memory serving path reconstructs weights in worker
        processes from read-only views over a host-wide segment; going
        through ``__init__`` would defensively copy them, defeating the
        zero-copy design.  The arrays must already be what
        :class:`SparseWeight` produces — float32 data, sorted indices —
        which holds by construction when they were serialized from one.
        """
        matrix = sp.csc_matrix((data, indices, indptr), shape=shape, copy=False)
        if matrix.dtype != np.float32:
            raise ValidationError(
                f"shared CSC data must be float32, got {matrix.dtype}"
            )
        # The source matrix had sort_indices() applied before serialization;
        # asserting it here would write (and the views are read-only).
        matrix.has_sorted_indices = True
        self = object.__new__(cls)
        self.matrix = matrix
        return self

    @classmethod
    def from_dense(cls, weights: np.ndarray) -> "SparseWeight":
        """Build from a (pruned) dense matrix — test/tooling convenience."""
        weights = np.asarray(weights, dtype=np.float32)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be a 2-D matrix, got shape {weights.shape}")
        return cls(sp.csc_matrix(weights))

    @classmethod
    def coerce(cls, value) -> "SparseWeight":
        """Accept a SparseWeight, a SciPy sparse matrix, or a SparseLayer."""
        if isinstance(value, cls):
            return value
        if sp.issparse(value):
            return cls(value)
        # Duck-typed SparseLayer: avoids importing repro.pruning at module
        # import time (repro.pruning imports repro.nn back).
        if hasattr(value, "index") and hasattr(value, "data") and hasattr(value, "shape"):
            return cls.from_sparse_layer(value)
        raise ValidationError(
            "cannot build a SparseWeight from a "
            f"{type(value).__name__}; expected a SparseWeight, scipy sparse "
            "matrix, or SparseLayer"
        )

    # -- introspection -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.matrix.shape[0]), int(self.matrix.shape[1]))

    @property
    def nnz(self) -> int:
        """Stored entries (explicit near-zero padding values included)."""
        return int(self.matrix.nnz)

    @property
    def nbytes(self) -> int:
        """Actual resident footprint: data + indices + indptr bytes."""
        return int(
            self.matrix.data.nbytes
            + self.matrix.indices.nbytes
            + self.matrix.indptr.nbytes
        )

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    # -- execution ---------------------------------------------------------
    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``x @ W.T`` for a batch ``x`` of shape (N, in_features).

        Returns an (N, out_features) float32 ndarray; add the bias yourself
        (the layer owns it).
        """
        return np.asarray((self.matrix @ x.T).T, dtype=np.float32)

    def to_dense(self) -> np.ndarray:
        """Materialise the dense (out_features, in_features) float32 matrix."""
        return np.asarray(self.matrix.toarray(), dtype=np.float32)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows, cols = self.shape
        return (
            f"SparseWeight({rows}x{cols}, nnz={self.nnz}, "
            f"density={self.density:.3f}, {self.nbytes}B)"
        )
