"""Decoding of a DeepSZ compressed model (the Figure 7b path).

Decoding has three phases, and the decoder reports a wall-clock breakdown of
each (this is the data behind the paper's Figure 7b):

1. **lossless** — decompress the index arrays with their recorded back ends;
2. **sz** — SZ-decompress every data array;
3. **csr** — rebuild the dense weight matrices from (index, data) pairs.

:meth:`DeepSZDecoder.apply` loads the reconstructed weights into a network so
it can serve inference immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.encoder import CompressedModel
from repro.nn.network import Network
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.sz.compressor import SZCompressor
from repro.sz.lossless import get_backend
from repro.utils.errors import DecompressionError
from repro.utils.timing import TimingBreakdown

__all__ = ["DecodedModel", "DeepSZDecoder"]


@dataclass
class DecodedModel:
    """Reconstructed dense fc-layer weights plus the decode timing breakdown."""

    network: str
    weights: Dict[str, np.ndarray]
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)

    @property
    def total_seconds(self) -> float:
        return self.timing.total


class DeepSZDecoder:
    """Decode a :class:`CompressedModel` back into dense fc-layer weights."""

    def __init__(self) -> None:
        self._sz = SZCompressor()

    def decode(self, model: CompressedModel) -> DecodedModel:
        """Reconstruct every layer; phases are timed separately (Figure 7b)."""
        timing = TimingBreakdown()
        index_arrays: Dict[str, np.ndarray] = {}
        data_arrays: Dict[str, np.ndarray] = {}

        with timing.phase("lossless"):
            for name, layer in model.layers.items():
                backend = get_backend(layer.index_backend)
                raw = backend.decompress(layer.index_payload)
                index = np.frombuffer(raw, dtype=np.uint8)
                if index.size != layer.entry_count:
                    raise DecompressionError(
                        f"index array for {name!r} has {index.size} entries, "
                        f"expected {layer.entry_count}"
                    )
                index_arrays[name] = index

        with timing.phase("sz"):
            for name, layer in model.layers.items():
                data = self._sz.decompress(layer.sz_payload)
                if data.size != layer.entry_count:
                    raise DecompressionError(
                        f"data array for {name!r} has {data.size} entries, "
                        f"expected {layer.entry_count}"
                    )
                data_arrays[name] = data

        weights: Dict[str, np.ndarray] = {}
        with timing.phase("csr"):
            for name, layer in model.layers.items():
                skeleton = SparseLayer(
                    data=np.zeros(layer.entry_count, dtype=np.float32),
                    index=index_arrays[name],
                    shape=layer.shape,
                    nnz=layer.nnz,
                )
                weights[name] = decode_sparse(skeleton, data=data_arrays[name])

        return DecodedModel(network=model.network, weights=weights, timing=timing)

    def apply(self, model: CompressedModel, network: Network) -> DecodedModel:
        """Decode and load the reconstructed weights into ``network``."""
        decoded = self.decode(model)
        for name, dense in decoded.weights.items():
            network.set_weights(name, dense)
        return decoded
