"""Decoding of a DeepSZ compressed model (the Figure 7b path).

Decoding has three phases, and the decoder reports a wall-clock breakdown of
each (this is the data behind the paper's Figure 7b):

1. **lossless** — decompress the index arrays with their recorded back ends
   (resolved through the codec registry);
2. **sz** — decompress every data array with its recorded data codec;
3. **csr** — rebuild weight matrices from (index, data) pairs: dense
   float32 matrices by default, or matmul-ready
   :class:`~repro.nn.sparse.SparseWeight` matrices on the ``sparse=True``
   compressed-domain fast path (which never materialises the dense form).

Layers are independent, so phase 2 fans out on a
:class:`repro.parallel.pool.TaskPool` when the decoder is built with
``workers > 1``; chunked v2 data payloads additionally decode their chunks
concurrently.  ``workers=1`` reproduces the serial result exactly.

:meth:`DeepSZDecoder.apply` loads the reconstructed weights into a network so
it can serve inference immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.codecs import Codec, get_codec
from repro.core.encoder import CompressedModel
from repro.obs import profile
from repro.nn.network import Network
from repro.nn.sparse import SparseWeight
from repro.parallel.pool import TaskPool
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.utils.errors import ConfigurationError, DecompressionError, ValidationError
from repro.utils.timing import TimingBreakdown

__all__ = [
    "DecodedModel",
    "DeepSZDecoder",
    "decode_compressed_layer",
    "decode_compressed_layer_sparse",
]


@dataclass
class DecodedModel:
    """Reconstructed fc-layer weights plus the decode timing breakdown.

    ``weights`` maps layer names to dense ``np.ndarray`` matrices on the
    default decode path, or to :class:`repro.nn.sparse.SparseWeight`
    instances when decoded with ``sparse=True`` (``sparse`` records which).
    """

    network: str
    weights: Dict[str, np.ndarray]
    timing: TimingBreakdown = field(default_factory=TimingBreakdown)
    sparse: bool = False

    @property
    def total_seconds(self) -> float:
        return self.timing.total


def _decode_data_task(args) -> np.ndarray:
    """Pool task: decompress one layer's data array.

    The codec instance travels with the task (pickled by class reference)
    instead of being re-resolved by name in the worker, so runtime-
    registered codecs keep working under the spawn/forkserver start
    methods, whose workers only know the built-in registry entries.
    """
    payload, codec, chunk_workers = args
    return codec.decompress(payload, workers=chunk_workers)


def _codec_for_layer(name: str, codec_name: str) -> Codec:
    """Resolve a layer's recorded codec, mapping unknown names to the decode
    error contract (corrupt/tampered blobs raise :class:`DecompressionError`,
    never a configuration error)."""
    try:
        return get_codec(codec_name)
    except ConfigurationError as exc:
        raise DecompressionError(
            f"layer {name!r} references unknown codec {codec_name!r}: {exc}"
        ) from exc


def _decode_layer_arrays(layer) -> tuple[np.ndarray, np.ndarray]:
    """Run the two codec passes of one layer: (index, data) arrays."""
    raw = _codec_for_layer(layer.name, layer.index_backend).decompress(
        layer.index_payload
    )
    index = np.frombuffer(raw, dtype=np.uint8)
    if index.size != layer.entry_count:
        raise DecompressionError(
            f"index array for {layer.name!r} has {index.size} entries, "
            f"expected {layer.entry_count}"
        )
    data = _codec_for_layer(layer.name, layer.data_codec).decompress(layer.sz_payload)
    if data.size != layer.entry_count:
        raise DecompressionError(
            f"data array for {layer.name!r} has {data.size} entries, "
            f"expected {layer.entry_count}"
        )
    return index, data


def decode_compressed_layer(layer) -> np.ndarray:
    """Decode one :class:`~repro.core.encoder.CompressedLayer` into its dense
    weight matrix: lossless index decode, data codec decode, CSR rebuild.

    The single-layer primitive behind the lazy
    :class:`repro.serve.ModelRuntime`.  :class:`DeepSZDecoder` below runs
    the same steps but grouped into whole-model phases (for the Figure 7b
    timing split and the pool fan-out), so the two implementations are
    intentionally parallel; equality of their reconstructions is pinned by
    ``tests/serve/test_runtime.py::test_layer_matches_full_decode``."""
    index, data = _decode_layer_arrays(layer)
    skeleton = SparseLayer(
        data=np.zeros(layer.entry_count, dtype=np.float32),
        index=index,
        shape=layer.shape,
        nnz=layer.nnz,
    )
    with profile.stage("build"):
        return decode_sparse(skeleton, data=data)


def decode_compressed_layer_sparse(layer) -> SparseLayer:
    """Decode one compressed layer but *stop at the two-array form*.

    The sparse-inference fast path: the codec passes run exactly as in
    :func:`decode_compressed_layer`, but the O(rows * cols) dense rebuild is
    skipped — the returned :class:`SparseLayer` carries the SZ-decompressed
    values in ``data`` and feeds straight into
    :meth:`repro.nn.sparse.SparseWeight.from_sparse_layer` (an O(entries)
    CSR/CSC build)."""
    index, data = _decode_layer_arrays(layer)
    return SparseLayer(
        data=np.asarray(data, dtype=np.float32),
        index=index,
        shape=layer.shape,
        nnz=layer.nnz,
    )


class DeepSZDecoder:
    """Decode a :class:`CompressedModel` back into dense fc-layer weights.

    ``workers`` parallelises the per-layer data decompression (and, for
    chunked v2 payloads, the per-chunk work); the reconstruction is
    identical for every worker count.
    """

    def __init__(self, *, workers: int = 1) -> None:
        self.workers = int(workers)
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")

    @staticmethod
    def _materialise(model) -> CompressedModel:
        """Accept a :class:`CompressedModel`, a ``.dsz``
        :class:`~repro.store.archive.ModelArchive`, or an archive path —
        the full-decode path reads every layer anyway, so an archive is
        simply materialised (lazy per-layer serving lives in
        :class:`repro.serve.ModelRuntime`)."""
        if isinstance(model, CompressedModel):
            return model
        from pathlib import Path

        from repro.store.archive import ModelArchive

        if isinstance(model, ModelArchive):
            return model.load_model()
        if isinstance(model, (str, Path, bytes)):
            return CompressedModel.load(model)
        raise ValidationError(
            f"cannot decode a {type(model).__name__}; expected a "
            "CompressedModel, ModelArchive, archive path, or blob"
        )

    def decode(self, model: CompressedModel, *, sparse: bool = False) -> DecodedModel:
        """Reconstruct every layer; phases are timed separately (Figure 7b).

        ``sparse=True`` takes the compressed-domain fast path: the "csr"
        phase builds matmul-ready :class:`~repro.nn.sparse.SparseWeight`
        matrices (O(entries)) instead of materialising dense ones
        (O(rows * cols)), and the result's ``weights`` hold those.
        """
        model = self._materialise(model)
        timing = TimingBreakdown()
        index_arrays: Dict[str, np.ndarray] = {}

        with timing.phase("lossless"):
            for name, layer in model.layers.items():
                raw = _codec_for_layer(name, layer.index_backend).decompress(
                    layer.index_payload
                )
                index = np.frombuffer(raw, dtype=np.uint8)
                if index.size != layer.entry_count:
                    raise DecompressionError(
                        f"index array for {name!r} has {index.size} entries, "
                        f"expected {layer.entry_count}"
                    )
                index_arrays[name] = index

        with timing.phase("sz"):
            names = list(model.layers)
            tasks = [
                (
                    model.layers[name].sz_payload,
                    _codec_for_layer(name, model.layers[name].data_codec),
                    self.workers,
                )
                for name in names
            ]
            decoded = TaskPool(self.workers).map(_decode_data_task, tasks)
            data_arrays: Dict[str, np.ndarray] = {}
            for name, data in zip(names, decoded):
                layer = model.layers[name]
                if data.size != layer.entry_count:
                    raise DecompressionError(
                        f"data array for {name!r} has {data.size} entries, "
                        f"expected {layer.entry_count}"
                    )
                data_arrays[name] = data

        weights: Dict[str, np.ndarray] = {}
        with timing.phase("csr"):
            for name, layer in model.layers.items():
                skeleton = SparseLayer(
                    data=data_arrays[name] if sparse else np.zeros(
                        layer.entry_count, dtype=np.float32
                    ),
                    index=index_arrays[name],
                    shape=layer.shape,
                    nnz=layer.nnz,
                )
                if sparse:
                    weights[name] = SparseWeight.from_sparse_layer(skeleton)
                else:
                    weights[name] = decode_sparse(skeleton, data=data_arrays[name])

        return DecodedModel(
            network=model.network, weights=weights, timing=timing, sparse=sparse
        )

    def apply(
        self, model: CompressedModel, network: Network, *, sparse: bool = False
    ) -> DecodedModel:
        """Decode and load the reconstructed weights into ``network``.

        ``sparse=True`` installs compressed-domain weights
        (:meth:`Network.set_sparse_weights`), switching the target fc layers
        to sparse execution.
        """
        decoded = self.decode(model, sparse=sparse)
        for name, weight in decoded.weights.items():
            if sparse:
                network.set_sparse_weights(name, weight)
            else:
                network.set_weights(name, weight)
        return decoded
