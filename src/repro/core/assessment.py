"""Error bound assessment (Step 2, Algorithm 1).

For every fc-layer the assessment compresses the layer's pruned *data array*
with SZ at a series of error bounds, rebuilds the dense weight matrix from the
decompressed values (all other layers untouched), runs the forward pass on the
test set and records the accuracy degradation and the compressed size.  The
sweep follows Algorithm 1:

* a coarse scan over ``{1e-3, 1e-2, 1e-1}`` finds the decade in which the
  degradation first exceeds the distortion criterion (0.1% absolute);
* a fine scan then starts one decade below that point and walks upwards in
  steps of the current decade (8e-3, 9e-3, 1e-2, 2e-2, ...), stopping at the
  first bound whose degradation exceeds the user's expected accuracy loss.

The collected ``(error bound, degradation, size)`` triples for each layer are
the input of the Algorithm 2 optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.codecs import best_fit_lossless, get_codec
from repro.nn.network import Network, topk_counts
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "AssessmentConfig",
    "AssessmentPoint",
    "LayerAssessment",
    "AssessmentResult",
    "bound_key",
    "evaluate_candidate",
    "assess_layer",
    "assess_network",
]


def bound_key(error_bound: float) -> str:
    """Canonical dictionary key for an error bound.

    Algorithm 1's schedules only ever produce bounds of the form
    ``step * 10^decade`` with ``step`` in 1..9 (anchored at a coarse bound),
    but historically the fine schedule *accumulated* floating-point sums, so
    two logically equal bounds could differ in the last ulp: the exact-float
    dedup in :func:`assess_layer` would then evaluate both, while the
    ``np.isclose`` lookup in :meth:`LayerAssessment.point_for` could match
    either.  This key snaps a bound to its decade/step grid point when it is
    within 1e-9 relative of one, and otherwise falls back to the shortest
    round-trip ``repr`` — one canonical representation for both paths.
    """
    eb = float(error_bound)
    if eb > 0.0 and math.isfinite(eb):
        decade = math.floor(math.log10(eb))
        # log10 rounding can land one decade off near powers of ten; probe
        # the neighbours too.
        for d in (decade - 1, decade, decade + 1):
            try:
                base = 10.0**d
                step = round(eb / base)
            except (OverflowError, ZeroDivisionError):
                # 10**d under/overflowed (subnormal or huge bounds): no grid
                # point exists at this decade.
                continue
            if 1 <= step <= 9 and math.isclose(step * base, eb, rel_tol=1e-9, abs_tol=0.0):
                return f"{step}e{d}"
    return repr(eb)


@dataclass(frozen=True)
class AssessmentConfig:
    """Parameters of the error-bound assessment."""

    expected_accuracy_loss: float = 0.004
    distortion_criterion: float = 0.001  #: the paper's 0.1% absolute criterion
    coarse_bounds: Sequence[float] = (1e-3, 1e-2, 1e-1)
    max_fine_tests: int = 24  #: safety cap on the fine scan length per layer
    capacity: int = 65536
    lossless: str = "zlib"
    index_lossless_candidates: Sequence[str] = ("zlib", "lzma", "bz2")
    eval_batch_size: int = 256
    data_codec: str = "sz"  #: registry name of the error-bounded data codec
    chunk_size: int | None = None  #: must match the encoder so Step 2's
    #: measured sizes use the same container format Step 4 will emit

    def __post_init__(self) -> None:
        check_positive(self.expected_accuracy_loss, "expected_accuracy_loss")
        check_positive(self.distortion_criterion, "distortion_criterion")
        if not self.coarse_bounds or list(self.coarse_bounds) != sorted(self.coarse_bounds):
            raise ValidationError("coarse_bounds must be a non-empty ascending sequence")
        if self.max_fine_tests < 1:
            raise ValidationError("max_fine_tests must be positive")


@dataclass(frozen=True)
class AssessmentPoint:
    """One tested (layer, error bound) combination."""

    layer: str
    error_bound: float
    accuracy: float
    degradation: float  #: baseline accuracy - accuracy (may be negative)
    compressed_bytes: int  #: SZ data array + lossless index array + container


@dataclass
class LayerAssessment:
    """All assessment points of one fc-layer."""

    layer: str
    baseline_accuracy: float
    points: List[AssessmentPoint] = field(default_factory=list)

    def point_for(self, error_bound: float) -> AssessmentPoint:
        key = bound_key(error_bound)
        for point in self.points:
            if bound_key(point.error_bound) == key:
                return point
        raise KeyError(f"no assessment point at error bound {error_bound} for {self.layer}")

    @property
    def tested_bounds(self) -> List[float]:
        return [p.error_bound for p in self.points]

    @property
    def feasible_range(self) -> tuple[float, float]:
        """(start, end) of the feasible error-bound range.

        The start is the smallest tested bound; the end is the largest tested
        bound whose degradation stays within the expected accuracy loss used
        during the sweep (falling back to the smallest bound if none does).
        """
        if not self.points:
            raise ValidationError(f"layer {self.layer} has no assessment points")
        ordered = sorted(self.points, key=lambda p: p.error_bound)
        start = ordered[0].error_bound
        end = start
        for point in ordered:
            if point.degradation <= _last_expected_loss(self):
                end = point.error_bound
        return (start, end)


def _last_expected_loss(assessment: "LayerAssessment") -> float:
    # The expected loss is recorded on the result object by assess_layer via
    # a private attribute; default to +inf when probing hand-built objects.
    return getattr(assessment, "_expected_loss", float("inf"))


@dataclass
class AssessmentResult:
    """Assessment of every fc-layer of a network."""

    network: str
    baseline_accuracy: float
    layers: Dict[str, LayerAssessment]
    tests_performed: int = 0
    #: Candidate evaluations actually computed (>= tests_performed when the
    #: parallel engine speculated past a stopping point, < when the CAS
    #: cache served repeated runs).
    evaluations: int = 0
    #: Candidate results served from a persistent AssessmentCache.
    cache_hits: int = 0

    def candidates(self) -> Dict[str, List[AssessmentPoint]]:
        """Per-layer candidate lists for the optimizer."""
        return {name: list(assessment.points) for name, assessment in self.layers.items()}


def reconstruct_candidate(
    sparse_layer: SparseLayer, error_bound: float, config: AssessmentConfig
) -> tuple[np.ndarray, int]:
    """Compress/decompress one layer's data array at ``error_bound``.

    Returns the reconstructed dense weight matrix and the size in bytes of
    the compressed data array (the error-bound-dependent half of a
    candidate's compressed size).
    """
    codec = get_codec(config.data_codec)
    payload = codec.compress(
        sparse_layer.data,
        error_bound=error_bound,
        capacity=config.capacity,
        lossless=config.lossless,
        chunk_size=config.chunk_size,
    )
    decompressed = codec.decompress(payload)
    return decode_sparse(sparse_layer, data=decompressed), len(payload)


def index_blob_bytes(sparse_layer: SparseLayer, config: AssessmentConfig) -> int:
    """Best-fit lossless size of the layer's index array.

    Independent of the error bound, so the assessment engine computes it
    once per layer instead of once per candidate.
    """
    _, index_blob = best_fit_lossless(
        sparse_layer.index.tobytes(), config.index_lossless_candidates
    )
    return len(index_blob)


def accuracy_with_substitution(
    network: Network,
    layer_name: str,
    weights: np.ndarray,
    activations: np.ndarray,
    test_labels: np.ndarray,
    *,
    batch_size: int,
) -> float:
    """Top-1 accuracy with ``weights`` substituted into one layer, resuming
    from checkpointed ``activations`` (the inputs of that layer).

    Purely functional: the network is never mutated, so any number of these
    can run concurrently against one shared network object.  Batching matches
    :meth:`Network.evaluate` exactly, which keeps the result bit-identical to
    a full forward pass with the weights swapped in.
    """
    labels = np.asarray(test_labels)
    total = len(labels)
    if total == 0:
        return 0.0
    hits = 0
    for start in range(0, total, batch_size):
        probs = network.forward_from(
            layer_name,
            activations[start : start + batch_size],
            weight_override=weights,
        )
        hits += topk_counts(probs, labels[start : start + batch_size], (1,))[1]
    return hits / total


def evaluate_candidate(
    network: Network,
    layer_name: str,
    sparse_layer: SparseLayer,
    error_bound: float,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    config: AssessmentConfig | None = None,
    activations: np.ndarray | None = None,
) -> tuple[float, int]:
    """Accuracy and compressed size with one layer reconstructed at ``error_bound``.

    This is the unit of work Algorithm 1 repeats and the parallel harness
    distributes: compress the layer's data array with SZ, decompress it,
    rebuild the dense weights through the index array, and run the forward
    pass with those weights substituted *functionally* — the network is
    never mutated, so candidates are pure tasks that can run concurrently.

    ``activations`` optionally supplies the checkpointed inputs of
    ``layer_name`` (see :meth:`Network.forward_to`); without it the
    checkpoint is recomputed from ``test_images``, which costs one upstream
    forward pass per call.
    """
    from repro.nn.layers import Dense

    config = config or AssessmentConfig()
    dense, payload_bytes = reconstruct_candidate(sparse_layer, error_bound, config)
    compressed_bytes = payload_bytes + index_blob_bytes(sparse_layer, config)
    if isinstance(network[layer_name], Dense):
        if activations is None:
            activations = checkpoint_activations(
                network, layer_name, test_images, batch_size=config.eval_batch_size
            )
        accuracy = accuracy_with_substitution(
            network,
            layer_name,
            dense,
            activations,
            test_labels,
            batch_size=config.eval_batch_size,
        )
    else:
        # Clone-on-write fallback for non-Dense weight layers (the historical
        # set_weights path supported them): still pure with respect to the
        # shared network, just without the functional resume.
        clone = network.clone()
        clone.set_weights(layer_name, dense)
        accuracy = clone.accuracy(
            test_images, test_labels, batch_size=config.eval_batch_size
        )
    return accuracy, compressed_bytes


def checkpoint_activations(
    network: Network,
    layer_name: str,
    test_images: np.ndarray,
    *,
    batch_size: int,
) -> np.ndarray:
    """The inputs of ``layer_name`` over a whole test set, batched exactly
    like :meth:`Network.evaluate` so downstream results stay bit-identical."""
    chunks = [
        network.forward_to(layer_name, test_images[start : start + batch_size])
        for start in range(0, len(test_images), batch_size)
    ]
    if not chunks:
        return np.zeros((0, 0), dtype=np.float32)
    return np.concatenate(chunks, axis=0)


def _fine_bounds(start: float, max_tests: int) -> List[float]:
    """The fine-scan schedule: start, 2*start, ... 9*start, 10*start, 20*start, ...

    Mirrors Algorithm 1's ``eb += base; base *= 10 when eb == 10 * base``,
    but computes every bound multiplicatively (``step * base``) instead of
    accumulating ``eb += base``: the additive form drifts in floating point,
    which made near-equal bounds platform-dependent and could roll the
    decade over one step early or late at the ``eb >= 10 * base - 1e-15``
    guard.  ``step`` cycles 1..9 and ``base`` is ``start`` scaled by exact
    powers of ten, so each bound is a single rounding away from its real
    value and the schedule is reproducible everywhere.
    """
    bounds: List[float] = []
    step = 1
    decade = 0
    while len(bounds) < max_tests:
        bounds.append(step * (start * 10.0**decade))
        step += 1
        if step == 10:
            step = 1
            decade += 1
    return bounds


def assess_layer(
    network: Network,
    layer_name: str,
    sparse_layer: SparseLayer,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    baseline_accuracy: float,
    config: AssessmentConfig | None = None,
    evaluator: Callable[..., tuple[float, int]] | None = None,
) -> tuple[LayerAssessment, int]:
    """Run Algorithm 1 for a single fc-layer.

    Returns the layer assessment and the number of accuracy tests performed.
    ``evaluator`` can override :func:`evaluate_candidate` (used by the
    parallel harness and by tests).
    """
    config = config or AssessmentConfig()
    evaluator = evaluator or evaluate_candidate
    assessment = LayerAssessment(layer=layer_name, baseline_accuracy=baseline_accuracy)
    assessment._expected_loss = config.expected_accuracy_loss  # type: ignore[attr-defined]
    tests = 0
    # Deduplication uses the canonical bound key, matching point_for: an
    # exact-float key would treat near-equal bounds (coarse anchor vs the
    # same value reached through the fine schedule) as distinct and
    # evaluate them twice.
    seen: Dict[str, AssessmentPoint] = {}

    def run(eb: float) -> AssessmentPoint:
        nonlocal tests
        key = bound_key(eb)
        if key in seen:
            return seen[key]
        accuracy, size = evaluator(
            network, layer_name, sparse_layer, eb, test_images, test_labels, config=config
        )
        tests += 1
        point = AssessmentPoint(
            layer=layer_name,
            error_bound=eb,
            accuracy=accuracy,
            degradation=baseline_accuracy - accuracy,
            compressed_bytes=size,
        )
        seen[key] = point
        return point

    # Coarse scan: find the decade where distortion first appears.
    fine_start: float | None = None
    last_coarse: AssessmentPoint | None = None
    for beta in config.coarse_bounds:
        point = run(beta)
        last_coarse = point
        if point.degradation > config.distortion_criterion:
            fine_start = beta / 10.0
            break

    if fine_start is None:
        # Even the largest coarse bound stays within the distortion criterion:
        # the feasible range is the whole coarse schedule; keep those points.
        assessment.points = sorted(seen.values(), key=lambda p: p.error_bound)
        return assessment, tests

    # Fine scan (Check procedure): walk upward from one decade below the
    # distortion point until the degradation exceeds the expected loss.
    for eb in _fine_bounds(fine_start, config.max_fine_tests):
        point = run(eb)
        if point.degradation > config.expected_accuracy_loss:
            break

    assessment.points = sorted(seen.values(), key=lambda p: p.error_bound)
    return assessment, tests


def assess_network(
    network: Network,
    sparse_layers: Dict[str, SparseLayer],
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    config: AssessmentConfig | None = None,
    evaluator: Callable[..., tuple[float, int]] | None = None,
    workers: int | None = 1,
    reuse_activations: bool = True,
    cache=None,
) -> AssessmentResult:
    """Run Algorithm 1 for every pruned fc-layer of a network.

    Without a custom ``evaluator`` this delegates to the
    :class:`~repro.core.assess_parallel.AssessmentEngine`: candidates are
    pure tasks fanned out over ``workers`` threads (``None`` resolves via
    ``REPRO_WORKERS`` / CPU count), each resuming from checkpointed
    activations of the perturbed layer, with optional persistent caching of
    results (``cache``, an :class:`~repro.store.AssessmentCache`).  The
    engine returns bit-identical points, test counts, and downstream
    optimizer plans for every worker count.

    Passing ``evaluator`` keeps the historical serial loop — it is the
    baseline the benchmarks compare against and the hook tests use to fake
    evaluations.
    """
    config = config or AssessmentConfig()
    if evaluator is None:
        from repro.core.assess_parallel import AssessmentEngine

        engine = AssessmentEngine(
            config,
            workers=workers,
            reuse_activations=reuse_activations,
            cache=cache,
        )
        return engine.run(network, sparse_layers, test_images, test_labels)

    baseline = network.accuracy(test_images, test_labels, batch_size=config.eval_batch_size)
    layers: Dict[str, LayerAssessment] = {}
    total_tests = 0
    for name, sparse_layer in sparse_layers.items():
        assessment, tests = assess_layer(
            network,
            name,
            sparse_layer,
            test_images,
            test_labels,
            baseline_accuracy=baseline,
            config=config,
            evaluator=evaluator,
        )
        layers[name] = assessment
        total_tests += tests
    return AssessmentResult(
        network=network.name,
        baseline_accuracy=baseline,
        layers=layers,
        tests_performed=total_tests,
        evaluations=total_tests,
    )
