"""Error bound assessment (Step 2, Algorithm 1).

For every fc-layer the assessment compresses the layer's pruned *data array*
with SZ at a series of error bounds, rebuilds the dense weight matrix from the
decompressed values (all other layers untouched), runs the forward pass on the
test set and records the accuracy degradation and the compressed size.  The
sweep follows Algorithm 1:

* a coarse scan over ``{1e-3, 1e-2, 1e-1}`` finds the decade in which the
  degradation first exceeds the distortion criterion (0.1% absolute);
* a fine scan then starts one decade below that point and walks upwards in
  steps of the current decade (8e-3, 9e-3, 1e-2, 2e-2, ...), stopping at the
  first bound whose degradation exceeds the user's expected accuracy loss.

The collected ``(error bound, degradation, size)`` triples for each layer are
the input of the Algorithm 2 optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.codecs import best_fit_lossless, get_codec
from repro.nn.network import Network
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "AssessmentConfig",
    "AssessmentPoint",
    "LayerAssessment",
    "AssessmentResult",
    "evaluate_candidate",
    "assess_layer",
    "assess_network",
]


@dataclass(frozen=True)
class AssessmentConfig:
    """Parameters of the error-bound assessment."""

    expected_accuracy_loss: float = 0.004
    distortion_criterion: float = 0.001  #: the paper's 0.1% absolute criterion
    coarse_bounds: Sequence[float] = (1e-3, 1e-2, 1e-1)
    max_fine_tests: int = 24  #: safety cap on the fine scan length per layer
    capacity: int = 65536
    lossless: str = "zlib"
    index_lossless_candidates: Sequence[str] = ("zlib", "lzma", "bz2")
    eval_batch_size: int = 256
    data_codec: str = "sz"  #: registry name of the error-bounded data codec
    chunk_size: int | None = None  #: must match the encoder so Step 2's
    #: measured sizes use the same container format Step 4 will emit

    def __post_init__(self) -> None:
        check_positive(self.expected_accuracy_loss, "expected_accuracy_loss")
        check_positive(self.distortion_criterion, "distortion_criterion")
        if not self.coarse_bounds or list(self.coarse_bounds) != sorted(self.coarse_bounds):
            raise ValidationError("coarse_bounds must be a non-empty ascending sequence")
        if self.max_fine_tests < 1:
            raise ValidationError("max_fine_tests must be positive")


@dataclass(frozen=True)
class AssessmentPoint:
    """One tested (layer, error bound) combination."""

    layer: str
    error_bound: float
    accuracy: float
    degradation: float  #: baseline accuracy - accuracy (may be negative)
    compressed_bytes: int  #: SZ data array + lossless index array + container


@dataclass
class LayerAssessment:
    """All assessment points of one fc-layer."""

    layer: str
    baseline_accuracy: float
    points: List[AssessmentPoint] = field(default_factory=list)

    def point_for(self, error_bound: float) -> AssessmentPoint:
        for point in self.points:
            if np.isclose(point.error_bound, error_bound, rtol=1e-9):
                return point
        raise KeyError(f"no assessment point at error bound {error_bound} for {self.layer}")

    @property
    def tested_bounds(self) -> List[float]:
        return [p.error_bound for p in self.points]

    @property
    def feasible_range(self) -> tuple[float, float]:
        """(start, end) of the feasible error-bound range.

        The start is the smallest tested bound; the end is the largest tested
        bound whose degradation stays within the expected accuracy loss used
        during the sweep (falling back to the smallest bound if none does).
        """
        if not self.points:
            raise ValidationError(f"layer {self.layer} has no assessment points")
        ordered = sorted(self.points, key=lambda p: p.error_bound)
        start = ordered[0].error_bound
        end = start
        for point in ordered:
            if point.degradation <= _last_expected_loss(self):
                end = point.error_bound
        return (start, end)


def _last_expected_loss(assessment: "LayerAssessment") -> float:
    # The expected loss is recorded on the result object by assess_layer via
    # a private attribute; default to +inf when probing hand-built objects.
    return getattr(assessment, "_expected_loss", float("inf"))


@dataclass
class AssessmentResult:
    """Assessment of every fc-layer of a network."""

    network: str
    baseline_accuracy: float
    layers: Dict[str, LayerAssessment]
    tests_performed: int = 0

    def candidates(self) -> Dict[str, List[AssessmentPoint]]:
        """Per-layer candidate lists for the optimizer."""
        return {name: list(assessment.points) for name, assessment in self.layers.items()}


def evaluate_candidate(
    network: Network,
    layer_name: str,
    sparse_layer: SparseLayer,
    error_bound: float,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    config: AssessmentConfig | None = None,
) -> tuple[float, int]:
    """Accuracy and compressed size with one layer reconstructed at ``error_bound``.

    This is the unit of work Algorithm 1 repeats and the parallel harness
    distributes: compress the layer's data array with SZ, decompress it,
    rebuild the dense weights through the index array, temporarily swap them
    into the network, run the forward pass, and restore the layer.
    """
    config = config or AssessmentConfig()
    codec = get_codec(config.data_codec)
    payload = codec.compress(
        sparse_layer.data,
        error_bound=error_bound,
        capacity=config.capacity,
        lossless=config.lossless,
        chunk_size=config.chunk_size,
    )
    decompressed = codec.decompress(payload)
    dense = decode_sparse(sparse_layer, data=decompressed)

    _, index_blob = best_fit_lossless(
        sparse_layer.index.tobytes(), config.index_lossless_candidates
    )
    compressed_bytes = len(payload) + len(index_blob)

    original = network.get_weights(layer_name)
    try:
        network.set_weights(layer_name, dense)
        accuracy = network.accuracy(
            test_images, test_labels, batch_size=config.eval_batch_size
        )
    finally:
        network.set_weights(layer_name, original)
    return accuracy, compressed_bytes


def _fine_bounds(start: float, max_tests: int) -> List[float]:
    """The fine-scan schedule: start, 2*start, ... 9*start, 10*start, 20*start, ...

    Mirrors Algorithm 1's ``eb += base; base *= 10 when eb == 10 * base``.
    """
    bounds: List[float] = []
    base = start
    eb = start
    while len(bounds) < max_tests:
        bounds.append(eb)
        eb += base
        # Floating-point-safe version of "eb == 10 * base".
        if eb >= 10 * base - 1e-15:
            base *= 10
    return bounds


def assess_layer(
    network: Network,
    layer_name: str,
    sparse_layer: SparseLayer,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    baseline_accuracy: float,
    config: AssessmentConfig | None = None,
    evaluator: Callable[..., tuple[float, int]] | None = None,
) -> tuple[LayerAssessment, int]:
    """Run Algorithm 1 for a single fc-layer.

    Returns the layer assessment and the number of accuracy tests performed.
    ``evaluator`` can override :func:`evaluate_candidate` (used by the
    parallel harness and by tests).
    """
    config = config or AssessmentConfig()
    evaluator = evaluator or evaluate_candidate
    assessment = LayerAssessment(layer=layer_name, baseline_accuracy=baseline_accuracy)
    assessment._expected_loss = config.expected_accuracy_loss  # type: ignore[attr-defined]
    tests = 0
    seen: Dict[float, AssessmentPoint] = {}

    def run(eb: float) -> AssessmentPoint:
        nonlocal tests
        if eb in seen:
            return seen[eb]
        accuracy, size = evaluator(
            network, layer_name, sparse_layer, eb, test_images, test_labels, config=config
        )
        tests += 1
        point = AssessmentPoint(
            layer=layer_name,
            error_bound=eb,
            accuracy=accuracy,
            degradation=baseline_accuracy - accuracy,
            compressed_bytes=size,
        )
        seen[eb] = point
        return point

    # Coarse scan: find the decade where distortion first appears.
    fine_start: float | None = None
    last_coarse: AssessmentPoint | None = None
    for beta in config.coarse_bounds:
        point = run(beta)
        last_coarse = point
        if point.degradation > config.distortion_criterion:
            fine_start = beta / 10.0
            break

    if fine_start is None:
        # Even the largest coarse bound stays within the distortion criterion:
        # the feasible range is the whole coarse schedule; keep those points.
        assessment.points = sorted(seen.values(), key=lambda p: p.error_bound)
        return assessment, tests

    # Fine scan (Check procedure): walk upward from one decade below the
    # distortion point until the degradation exceeds the expected loss.
    for eb in _fine_bounds(fine_start, config.max_fine_tests):
        point = run(eb)
        if point.degradation > config.expected_accuracy_loss:
            break

    assessment.points = sorted(seen.values(), key=lambda p: p.error_bound)
    return assessment, tests


def assess_network(
    network: Network,
    sparse_layers: Dict[str, SparseLayer],
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    config: AssessmentConfig | None = None,
    evaluator: Callable[..., tuple[float, int]] | None = None,
) -> AssessmentResult:
    """Run Algorithm 1 for every pruned fc-layer of a network."""
    config = config or AssessmentConfig()
    baseline = network.accuracy(test_images, test_labels, batch_size=config.eval_batch_size)
    layers: Dict[str, LayerAssessment] = {}
    total_tests = 0
    for name, sparse_layer in sparse_layers.items():
        assessment, tests = assess_layer(
            network,
            name,
            sparse_layer,
            test_images,
            test_labels,
            baseline_accuracy=baseline,
            config=config,
            evaluator=evaluator,
        )
        layers[name] = assessment
        total_tests += tests
    return AssessmentResult(
        network=network.name,
        baseline_accuracy=baseline,
        layers=layers,
        tests_performed=total_tests,
    )
