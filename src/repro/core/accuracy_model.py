"""The additive accuracy-loss model (Equation 1) and its experimental probe.

The paper argues (Section 3.4) that, because the compression error injected in
each fc-layer is small relative to the weights and ReLU is piecewise linear,
the errors of different layers perturb the network output independently, so
the overall accuracy loss is approximately the *sum* of the per-layer losses
as long as the total stays below ~2%.  Algorithm 2 relies on that additivity.

:func:`predict_total_loss` implements Equation 1.  :func:`linearity_probe`
reproduces the Figure 6 experiment: sample random per-layer error-bound
combinations, compare the predicted (summed) loss against the actually
measured loss of the jointly reconstructed network, and report the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.assessment import AssessmentResult
from repro.nn.network import Network
from repro.pruning.sparse_format import SparseLayer, decode_sparse
from repro.sz.compressor import SZCompressor
from repro.sz.config import SZConfig
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng

__all__ = ["predict_total_loss", "LinearityProbeResult", "linearity_probe"]


def predict_total_loss(
    assessment: AssessmentResult, error_bounds: Mapping[str, float]
) -> float:
    """Equation 1: predicted overall accuracy loss for a per-layer bound choice.

    The prediction is the sum of the measured per-layer degradations at the
    chosen error bounds (negative degradations — accuracy improvements — are
    summed as-is, mirroring the paper).
    """
    total = 0.0
    for layer, eb in error_bounds.items():
        if layer not in assessment.layers:
            raise ValidationError(f"layer {layer!r} is not part of the assessment")
        total += assessment.layers[layer].point_for(eb).degradation
    return float(total)


@dataclass(frozen=True)
class LinearityProbeResult:
    """Outcome of the Figure 6 linearity experiment."""

    expected_losses: np.ndarray  #: per-sample predicted loss (sum of layer deltas)
    actual_losses: np.ndarray  #: per-sample measured loss of the joint reconstruction
    max_deviation: float
    correlation: float

    @property
    def mean_absolute_deviation(self) -> float:
        return float(np.mean(np.abs(self.expected_losses - self.actual_losses)))


def linearity_probe(
    network: Network,
    sparse_layers: Dict[str, SparseLayer],
    test_images: np.ndarray,
    test_labels: np.ndarray,
    *,
    error_bound_grid: Sequence[float] = (2e-3, 5e-3, 1e-2, 2e-2, 3e-2, 5e-2),
    samples: int = 12,
    capacity: int = 65536,
    seed: int | None = None,
    batch_size: int = 256,
) -> LinearityProbeResult:
    """Measure how additive the per-layer accuracy losses are (Figure 6).

    For each sampled combination of per-layer error bounds the probe measures

    * the per-layer degradation (one layer reconstructed at a time), and
    * the joint degradation (all layers reconstructed simultaneously),

    then compares their sum with the joint measurement.
    """
    if samples < 1:
        raise ValidationError("samples must be positive")
    rng = make_rng(seed)
    layer_names = list(sparse_layers)
    baseline = network.accuracy(test_images, test_labels, batch_size=batch_size)

    # Cache per-(layer, eb) reconstructions and degradations.
    dense_cache: Dict[tuple[str, float], np.ndarray] = {}
    delta_cache: Dict[tuple[str, float], float] = {}

    def reconstruction(layer: str, eb: float) -> np.ndarray:
        key = (layer, eb)
        if key not in dense_cache:
            compressor = SZCompressor(SZConfig(error_bound=eb, capacity=capacity))
            payload = compressor.compress(sparse_layers[layer].data).payload
            dense_cache[key] = decode_sparse(
                sparse_layers[layer], data=compressor.decompress(payload)
            )
        return dense_cache[key]

    def layer_delta(layer: str, eb: float) -> float:
        key = (layer, eb)
        if key not in delta_cache:
            original = network.get_weights(layer)
            try:
                network.set_weights(layer, reconstruction(layer, eb))
                acc = network.accuracy(test_images, test_labels, batch_size=batch_size)
            finally:
                network.set_weights(layer, original)
            delta_cache[key] = baseline - acc
        return delta_cache[key]

    expected: List[float] = []
    actual: List[float] = []
    grid = list(error_bound_grid)
    for _ in range(samples):
        combo = {layer: float(rng.choice(grid)) for layer in layer_names}
        expected.append(sum(layer_delta(layer, eb) for layer, eb in combo.items()))

        originals = {layer: network.get_weights(layer) for layer in layer_names}
        try:
            for layer, eb in combo.items():
                network.set_weights(layer, reconstruction(layer, eb))
            joint_acc = network.accuracy(test_images, test_labels, batch_size=batch_size)
        finally:
            for layer, weights in originals.items():
                network.set_weights(layer, weights)
        actual.append(baseline - joint_acc)

    expected_arr = np.asarray(expected)
    actual_arr = np.asarray(actual)
    if expected_arr.size > 1 and np.std(expected_arr) > 0 and np.std(actual_arr) > 0:
        correlation = float(np.corrcoef(expected_arr, actual_arr)[0, 1])
    else:
        correlation = 1.0
    return LinearityProbeResult(
        expected_losses=expected_arr,
        actual_losses=actual_arr,
        max_deviation=float(np.max(np.abs(expected_arr - actual_arr))) if samples else 0.0,
        correlation=correlation,
    )
