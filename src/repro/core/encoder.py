"""Generation of the compressed model (Step 4).

The encoder takes the pruned sparse layers and the per-layer error bounds
chosen by the optimizer, compresses every data array with the selected
error-bounded codec (SZ by default, resolved through the codec registry) and
every index array with the best-fit lossless codec, and packs the result
into one self-describing container (the "bitstream" of Figure 1).  The
container also carries everything the decoder needs to rebuild dense weight
matrices: layer shapes, entry counts, the data codec, and the lossless back
end that won the selection.

Layers are independent, so :meth:`DeepSZEncoder.encode` fans them out on a
:class:`repro.parallel.pool.TaskPool` when ``workers > 1``; additionally the
SZ codec's chunked v2 container parallelises *within* a layer when
``chunk_size`` is set (nested pools degrade gracefully — a layer task that
runs inside a pool worker encodes its chunks serially).  ``workers=1``
produces byte-identical output.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.codecs import best_fit_lossless, get_codec, resolve_error_bounded_codec
from repro.parallel.pool import TaskPool
from repro.pruning.sparse_format import SparseLayer
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError, ValidationError
from repro.utils.timing import TimingBreakdown

__all__ = ["CompressedLayer", "CompressedModel", "DeepSZEncoder"]

_MAGIC = "repro-deepsz-model-v1"
_DEFAULT_DATA_CODEC = "sz"


@dataclass(frozen=True)
class CompressedLayer:
    """One fc-layer inside a compressed model."""

    name: str
    error_bound: float
    shape: tuple[int, int]
    nnz: int
    entry_count: int
    sz_payload: bytes
    index_payload: bytes
    index_backend: str
    data_codec: str = _DEFAULT_DATA_CODEC

    @property
    def compressed_bytes(self) -> int:
        return len(self.sz_payload) + len(self.index_payload)

    @property
    def dense_bytes(self) -> int:
        return int(np.prod(self.shape)) * 4

    @property
    def ratio(self) -> float:
        total = self.compressed_bytes
        return self.dense_bytes / total if total else float("inf")

    @property
    def bits_per_nonzero(self) -> float:
        """Encoded bits per surviving weight (the paper's 2.0–3.3 bits range)."""
        return 8.0 * self.compressed_bytes / self.nnz if self.nnz else 0.0


@dataclass
class CompressedModel:
    """A fully encoded network: per-layer streams plus container metadata."""

    network: str
    layers: Dict[str, CompressedLayer]
    expected_accuracy_loss: float
    encoding_time: TimingBreakdown = field(default_factory=TimingBreakdown)

    @property
    def compressed_bytes(self) -> int:
        return int(sum(layer.compressed_bytes for layer in self.layers.values()))

    @property
    def dense_bytes(self) -> int:
        return int(sum(layer.dense_bytes for layer in self.layers.values()))

    @property
    def compression_ratio(self) -> float:
        total = self.compressed_bytes
        return self.dense_bytes / total if total else float("inf")

    def error_bounds(self) -> Dict[str, float]:
        return {name: layer.error_bound for name, layer in self.layers.items()}

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the whole model to one byte string (the v1 monolithic
        container; prefer :meth:`save` / the ``.dsz`` archive for random
        access).  Payload CRC32s ride in the layer metadata so
        :meth:`from_bytes` detects corruption per layer."""
        sections: Dict[str, bytes] = {}
        layer_meta = {}
        for name, layer in self.layers.items():
            sections[f"{name}/sz"] = layer.sz_payload
            sections[f"{name}/index"] = layer.index_payload
            layer_meta[name] = {
                "error_bound": layer.error_bound,
                "shape": list(layer.shape),
                "nnz": layer.nnz,
                "entry_count": layer.entry_count,
                "index_backend": layer.index_backend,
                "data_codec": layer.data_codec,
                "crc32": {
                    "sz": zlib.crc32(layer.sz_payload),
                    "index": zlib.crc32(layer.index_payload),
                },
            }
        meta = {
            "magic": _MAGIC,
            "network": self.network,
            "expected_accuracy_loss": self.expected_accuracy_loss,
            "layers": layer_meta,
        }
        return write_named_sections(sections, meta=meta)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompressedModel":
        """Rebuild a :class:`CompressedModel` from :meth:`to_bytes` output.

        Model blobs written before the codec registry existed carry no
        ``data_codec`` field; they default to ``"sz"``, the only data codec
        of that era, so old containers stay decodable.
        """
        meta, sections = read_named_sections(blob)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("not a DeepSZ compressed model (bad magic)")
        layers: Dict[str, CompressedLayer] = {}
        for name, info in meta["layers"].items():
            # Payload integrity: blobs written after PR 2 carry per-payload
            # CRC32s, so a flipped bit fails here with the layer named
            # instead of as an opaque codec error deep in the decode.
            for kind, crc in info.get("crc32", {}).items():
                payload = sections.get(f"{name}/{kind}", b"")
                if zlib.crc32(payload) != int(crc):
                    raise DecompressionError(
                        f"layer {name!r} {kind} payload failed CRC32 "
                        "integrity verification (blob corrupted?)"
                    )
            layers[name] = CompressedLayer(
                name=name,
                error_bound=float(info["error_bound"]),
                shape=tuple(info["shape"]),  # type: ignore[arg-type]
                nnz=int(info["nnz"]),
                entry_count=int(info["entry_count"]),
                sz_payload=sections[f"{name}/sz"],
                index_payload=sections[f"{name}/index"],
                index_backend=str(info["index_backend"]),
                data_codec=str(info.get("data_codec", _DEFAULT_DATA_CODEC)),
            )
        return cls(
            network=str(meta["network"]),
            layers=layers,
            expected_accuracy_loss=float(meta["expected_accuracy_loss"]),
        )

    # -- archive path (the random-access .dsz v2 container) ----------------
    def to_archive_bytes(self) -> bytes:
        """Serialise as a random-access ``.dsz`` archive (footer-indexed
        manifest, per-layer segments with CRC32s; see :mod:`repro.store`)."""
        from repro.store.archive import archive_bytes

        return archive_bytes(self)

    def save(self, path: Union[str, Path]) -> int:
        """Write a ``.dsz`` archive to ``path``; returns bytes written."""
        from repro.store.archive import write_archive

        return write_archive(self, path)

    @classmethod
    def load(cls, source: Union[str, Path, bytes]) -> "CompressedModel":
        """Load a model from a ``.dsz`` archive path/bytes *or* a v1
        monolithic blob (both routed through the archive compat reader, so
        segment checksums are verified when present)."""
        from repro.store.archive import ModelArchive

        if isinstance(source, (str, Path)):
            with ModelArchive.open(source) as archive:
                return archive.load_model()
        with ModelArchive.from_bytes(source) as archive:
            return archive.load_model()


def _encode_layer_task(
    args: tuple[str, SparseLayer, float, dict],
) -> tuple[CompressedLayer, float]:
    """Pool task: compress one layer; returns (layer, encode seconds).

    The task carries the codec *instance* (stateless, pickled by class
    reference) rather than resolving the registry name in the worker:
    under the spawn/forkserver start methods a worker's registry holds
    only the built-ins, so runtime-registered codecs would not resolve.
    """
    import time

    name, sparse_layer, error_bound, params = args
    start = time.perf_counter()
    codec = params["codec"]
    payload = codec.compress(
        sparse_layer.data,
        error_bound=float(error_bound),
        capacity=params["capacity"],
        lossless=params["sz_lossless"],
        chunk_size=params["chunk_size"],
        workers=params["chunk_workers"],
    )
    backend_name, index_blob = best_fit_lossless(
        sparse_layer.index.tobytes(), params["index_codecs"]
    )
    layer = CompressedLayer(
        name=name,
        error_bound=float(error_bound),
        shape=sparse_layer.shape,
        nnz=sparse_layer.nnz,
        entry_count=sparse_layer.entry_count,
        sz_payload=payload,
        index_payload=index_blob,
        index_backend=backend_name,
        data_codec=params["data_codec"],
    )
    return layer, time.perf_counter() - start


class DeepSZEncoder:
    """Step 4: produce the compressed model from sparse layers + error bounds.

    Parameters
    ----------
    capacity / sz_lossless / index_lossless_candidates:
        Forwarded to the data codec and the index best-fit selection.
    data_codec:
        Registry name of the error-bounded codec applied to the data arrays
        (``"sz"`` by default; any codec with ``info.error_bounded`` works).
    chunk_size:
        When set (and the codec supports chunking), each data array is split
        into independently compressed chunks of this many elements, enabling
        intra-layer parallelism and the v2 container format.
    workers:
        Fan layers (and, via the chunked container, chunks) out on this many
        pool workers.  ``1`` (the default) is fully serial and produces
        byte-identical payloads.
    """

    def __init__(
        self,
        *,
        capacity: int = 65536,
        sz_lossless: str = "zlib",
        index_lossless_candidates: Sequence[str] = ("zlib", "lzma", "bz2"),
        data_codec: str = _DEFAULT_DATA_CODEC,
        chunk_size: int | None = None,
        workers: int = 1,
    ) -> None:
        self._codec = resolve_error_bounded_codec(data_codec, chunk_size=chunk_size)
        self.capacity = int(capacity)
        self.sz_lossless = sz_lossless
        self.index_lossless_candidates = tuple(index_lossless_candidates)
        # Resolve the candidate codecs now: unknown names fail fast, and the
        # instances travel to pool workers (whose registries only hold
        # built-ins under spawn start methods) instead of being re-resolved
        # by name there.
        self._index_codecs = tuple(
            get_codec(name) for name in self.index_lossless_candidates
        )
        self.data_codec = data_codec
        self.chunk_size = chunk_size
        self.workers = int(workers)
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")

    def _codec_params(self) -> dict:
        return {
            "codec": self._codec,
            "data_codec": self.data_codec,
            "capacity": self.capacity,
            "sz_lossless": self.sz_lossless,
            "index_codecs": self._index_codecs,
            "chunk_size": self.chunk_size,
            "chunk_workers": self.workers,
        }

    def encode_layer(
        self, name: str, sparse_layer: SparseLayer, error_bound: float
    ) -> CompressedLayer:
        """Compress one layer: the data codec on the data array, best-fit
        lossless on the index."""
        layer, _ = _encode_layer_task(
            (name, sparse_layer, error_bound, self._codec_params())
        )
        return layer

    def encode(
        self,
        network_name: str,
        sparse_layers: Mapping[str, SparseLayer],
        error_bounds: Mapping[str, float],
        *,
        expected_accuracy_loss: float = 0.0,
    ) -> CompressedModel:
        """Compress every layer with its chosen error bound.

        With ``workers > 1`` the layers are encoded concurrently; the
        recorded per-layer timings are then the workers' own encode times
        (which overlap in wall-clock).
        """
        missing = set(sparse_layers) - set(error_bounds)
        if missing:
            raise ValidationError(f"no error bound chosen for layers: {sorted(missing)}")
        params = self._codec_params()
        tasks = [
            (name, sparse_layer, float(error_bounds[name]), params)
            for name, sparse_layer in sparse_layers.items()
        ]
        results = TaskPool(self.workers).map(_encode_layer_task, tasks)
        timing = TimingBreakdown()
        layers: Dict[str, CompressedLayer] = {}
        for layer, seconds in results:
            layers[layer.name] = layer
            timing.add(f"encode:{layer.name}", seconds)
        return CompressedModel(
            network=network_name,
            layers=layers,
            expected_accuracy_loss=float(expected_accuracy_loss),
            encoding_time=timing,
        )
