"""Generation of the compressed model (Step 4).

The encoder takes the pruned sparse layers and the per-layer error bounds
chosen by the optimizer, compresses every data array with SZ and every index
array with the best-fit lossless codec, and packs the result into one
self-describing container (the "bitstream" of Figure 1).  The container also
carries everything the decoder needs to rebuild dense weight matrices: layer
shapes, entry counts and the lossless back end that won the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.pruning.sparse_format import SparseLayer
from repro.sz.compressor import SZCompressor
from repro.sz.config import SZConfig
from repro.sz.lossless import best_fit_backend
from repro.utils.bytesio import read_named_sections, write_named_sections
from repro.utils.errors import DecompressionError, ValidationError
from repro.utils.timing import TimingBreakdown

__all__ = ["CompressedLayer", "CompressedModel", "DeepSZEncoder"]

_MAGIC = "repro-deepsz-model-v1"


@dataclass(frozen=True)
class CompressedLayer:
    """One fc-layer inside a compressed model."""

    name: str
    error_bound: float
    shape: tuple[int, int]
    nnz: int
    entry_count: int
    sz_payload: bytes
    index_payload: bytes
    index_backend: str

    @property
    def compressed_bytes(self) -> int:
        return len(self.sz_payload) + len(self.index_payload)

    @property
    def dense_bytes(self) -> int:
        return int(np.prod(self.shape)) * 4

    @property
    def ratio(self) -> float:
        total = self.compressed_bytes
        return self.dense_bytes / total if total else float("inf")

    @property
    def bits_per_nonzero(self) -> float:
        """Encoded bits per surviving weight (the paper's 2.0–3.3 bits range)."""
        return 8.0 * self.compressed_bytes / self.nnz if self.nnz else 0.0


@dataclass
class CompressedModel:
    """A fully encoded network: per-layer streams plus container metadata."""

    network: str
    layers: Dict[str, CompressedLayer]
    expected_accuracy_loss: float
    encoding_time: TimingBreakdown = field(default_factory=TimingBreakdown)

    @property
    def compressed_bytes(self) -> int:
        return int(sum(layer.compressed_bytes for layer in self.layers.values()))

    @property
    def dense_bytes(self) -> int:
        return int(sum(layer.dense_bytes for layer in self.layers.values()))

    @property
    def compression_ratio(self) -> float:
        total = self.compressed_bytes
        return self.dense_bytes / total if total else float("inf")

    def error_bounds(self) -> Dict[str, float]:
        return {name: layer.error_bound for name, layer in self.layers.items()}

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the whole model to one byte string."""
        sections: Dict[str, bytes] = {}
        layer_meta = {}
        for name, layer in self.layers.items():
            sections[f"{name}/sz"] = layer.sz_payload
            sections[f"{name}/index"] = layer.index_payload
            layer_meta[name] = {
                "error_bound": layer.error_bound,
                "shape": list(layer.shape),
                "nnz": layer.nnz,
                "entry_count": layer.entry_count,
                "index_backend": layer.index_backend,
            }
        meta = {
            "magic": _MAGIC,
            "network": self.network,
            "expected_accuracy_loss": self.expected_accuracy_loss,
            "layers": layer_meta,
        }
        return write_named_sections(sections, meta=meta)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompressedModel":
        """Rebuild a :class:`CompressedModel` from :meth:`to_bytes` output."""
        meta, sections = read_named_sections(blob)
        if meta.get("magic") != _MAGIC:
            raise DecompressionError("not a DeepSZ compressed model (bad magic)")
        layers: Dict[str, CompressedLayer] = {}
        for name, info in meta["layers"].items():
            layers[name] = CompressedLayer(
                name=name,
                error_bound=float(info["error_bound"]),
                shape=tuple(info["shape"]),  # type: ignore[arg-type]
                nnz=int(info["nnz"]),
                entry_count=int(info["entry_count"]),
                sz_payload=sections[f"{name}/sz"],
                index_payload=sections[f"{name}/index"],
                index_backend=str(info["index_backend"]),
            )
        return cls(
            network=str(meta["network"]),
            layers=layers,
            expected_accuracy_loss=float(meta["expected_accuracy_loss"]),
        )


class DeepSZEncoder:
    """Step 4: produce the compressed model from sparse layers + error bounds."""

    def __init__(
        self,
        *,
        capacity: int = 65536,
        sz_lossless: str = "zlib",
        index_lossless_candidates: Sequence[str] = ("zlib", "lzma", "bz2"),
    ) -> None:
        self.capacity = int(capacity)
        self.sz_lossless = sz_lossless
        self.index_lossless_candidates = tuple(index_lossless_candidates)

    def encode_layer(
        self, name: str, sparse_layer: SparseLayer, error_bound: float
    ) -> CompressedLayer:
        """Compress one layer: SZ on the data array, best-fit lossless on the index."""
        compressor = SZCompressor(
            SZConfig(
                error_bound=error_bound, capacity=self.capacity, lossless=self.sz_lossless
            )
        )
        sz_result = compressor.compress(sparse_layer.data)
        backend, index_blob = best_fit_backend(
            sparse_layer.index.tobytes(), self.index_lossless_candidates
        )
        return CompressedLayer(
            name=name,
            error_bound=float(error_bound),
            shape=sparse_layer.shape,
            nnz=sparse_layer.nnz,
            entry_count=sparse_layer.entry_count,
            sz_payload=sz_result.payload,
            index_payload=index_blob,
            index_backend=backend.name,
        )

    def encode(
        self,
        network_name: str,
        sparse_layers: Mapping[str, SparseLayer],
        error_bounds: Mapping[str, float],
        *,
        expected_accuracy_loss: float = 0.0,
    ) -> CompressedModel:
        """Compress every layer with its chosen error bound."""
        missing = set(sparse_layers) - set(error_bounds)
        if missing:
            raise ValidationError(f"no error bound chosen for layers: {sorted(missing)}")
        timing = TimingBreakdown()
        layers: Dict[str, CompressedLayer] = {}
        for name, sparse_layer in sparse_layers.items():
            with timing.phase(f"encode:{name}"):
                layers[name] = self.encode_layer(name, sparse_layer, error_bounds[name])
        return CompressedModel(
            network=network_name,
            layers=layers,
            expected_accuracy_loss=float(expected_accuracy_loss),
            encoding_time=timing,
        )
