"""DeepSZ: the paper's primary contribution.

The framework has four steps (Figure 1):

1. **Network pruning** (:mod:`repro.pruning`) — magnitude pruning plus masked
   retraining, producing the two-array sparse layers.
2. **Error bound assessment** (:mod:`repro.core.assessment`, Algorithm 1) —
   for each fc-layer, sweep SZ error bounds, measure the inference-accuracy
   degradation with *only that layer* reconstructed from lossy data, and
   identify the feasible error-bound range.
3. **Optimization of the error-bound configuration**
   (:mod:`repro.core.optimizer`, Algorithm 2) — a knapsack-style dynamic
   program that picks one error bound per layer to minimise the total
   compressed size subject to the user's expected accuracy loss (or, in
   expected-ratio mode, to maximise accuracy subject to a size budget),
   relying on the additivity of per-layer degradations
   (:mod:`repro.core.accuracy_model`, Equation 1).
4. **Generation of the compressed model** (:mod:`repro.core.encoder`) — SZ on
   every data array at its chosen bound, best-fit lossless coding of every
   index array, packed into a single self-describing container;
   :mod:`repro.core.decoder` reverses it and reports the Figure 7b timing
   breakdown.

:class:`repro.core.DeepSZ` (in :mod:`repro.core.pipeline`) chains the four
steps behind one call.
"""

from repro.core.assessment import (
    AssessmentConfig,
    AssessmentPoint,
    LayerAssessment,
    AssessmentResult,
    assess_layer,
    assess_network,
    bound_key,
    evaluate_candidate,
)
from repro.core.assess_parallel import AssessmentEngine, EngineStats
from repro.core.accuracy_model import (
    predict_total_loss,
    linearity_probe,
    LinearityProbeResult,
)
from repro.core.optimizer import (
    OptimizerConfig,
    OptimizationPlan,
    optimize_error_bounds,
    optimize_for_size_budget,
)
from repro.core.encoder import CompressedLayer, CompressedModel, DeepSZEncoder
from repro.core.decoder import DeepSZDecoder, DecodedModel
from repro.core.pipeline import DeepSZ, DeepSZConfig, DeepSZResult

__all__ = [
    "AssessmentConfig",
    "AssessmentPoint",
    "LayerAssessment",
    "AssessmentResult",
    "AssessmentEngine",
    "EngineStats",
    "assess_layer",
    "assess_network",
    "bound_key",
    "evaluate_candidate",
    "predict_total_loss",
    "linearity_probe",
    "LinearityProbeResult",
    "OptimizerConfig",
    "OptimizationPlan",
    "optimize_error_bounds",
    "optimize_for_size_budget",
    "CompressedLayer",
    "CompressedModel",
    "DeepSZEncoder",
    "DeepSZDecoder",
    "DecodedModel",
    "DeepSZ",
    "DeepSZConfig",
    "DeepSZResult",
]
