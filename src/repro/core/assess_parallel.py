"""Parallel, cache-reusing error-bound assessment engine.

Step 2 dominates DeepSZ's end-to-end time: every candidate ``(layer, error
bound)`` pays a compress/decompress *and* a test-set forward pass, and the
historical implementation ran them strictly serially while mutating the
shared network (``set_weights`` / restore), which blocked any fan-out.  This
module replaces that with an engine built on three ideas:

**Purity.**  A candidate evaluation is a pure function of (layer content,
error bound, codec config, test set): the reconstructed weights are
substituted *functionally* through :meth:`Network.forward_from`, never
written into the network, so any number of candidates can run concurrently
against one shared network object.

**Activation reuse.**  All layers upstream of the perturbed one are
untouched by a candidate, so their activations are identical across that
layer's whole sweep.  One batched :meth:`Network.forward_collect` pass
checkpoints the inputs of every assessed layer; each candidate then only
recomputes the perturbed layer and everything downstream.  For the deeper
fc-layers this skips the overwhelming majority of the forward FLOPs.

**Speculation + persistence.**  Algorithm 1's scans are sequential by
definition (each step decides whether to continue), so the engine keeps the
pool busy by speculating: the coarse scan evaluates every layer's full
decade schedule at once, and the fine scans run per-layer lookahead windows
concurrently across layers.  Results beyond a layer's stopping point are
*trimmed from the result* — the recorded points, test counts, and downstream
optimizer plans are bit-identical to the serial Algorithm 1 for every worker
count — but they are still persisted to the optional
:class:`~repro.store.AssessmentCache`, keyed by content SHAs, so repeated
runs (and even over-speculated candidates) make future assessments
incremental.  The expensive shared setup (per-layer index lossless fits,
the checkpoint forward pass) is computed lazily on the first cache *miss*,
so a fully cached run touches neither.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assessment import (
    AssessmentConfig,
    AssessmentPoint,
    AssessmentResult,
    LayerAssessment,
    accuracy_with_substitution,
    assess_layer,
    bound_key,
    checkpoint_activations,
    index_blob_bytes,
    reconstruct_candidate,
    _fine_bounds,
)
from repro.nn.layers import Dense
from repro.nn.network import Network
from repro.parallel.pool import TaskPool
from repro.pruning.sparse_format import SparseLayer

__all__ = ["AssessmentEngine", "EngineStats"]

#: Checkpoints beyond this total budget fall back to per-candidate
#: recomputation (still pure, just without the reuse speedup).
DEFAULT_CHECKPOINT_BUDGET = 1 << 30


@dataclass
class EngineStats:
    """Observability counters for one engine run."""

    evaluations: int = 0  #: candidate evaluations actually computed
    cache_hits: int = 0  #: candidates served from the persistent cache
    speculative_wasted: int = 0  #: computed results trimmed from the output
    checkpointed_layers: int = 0  #: layers whose activations were reused

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _LayerContext:
    """Per-layer immutable state shared by all of the layer's candidates."""

    name: str
    sparse: SparseLayer
    is_dense: bool
    cache_key_base: Optional[Dict[str, object]]


@dataclass
class _FineScan:
    """Mutable fine-scan cursor of one layer.

    ``evaluated`` maps a canonical bound key to ``(exact_bound, result)``:
    the *bitwise* bound the result was computed at is kept alongside so a
    result is only ever reused for the exact same float (see
    :meth:`AssessmentEngine._sweep_speculative`).
    """

    schedule: List[float]
    position: int = 0
    evaluated: Dict[str, Tuple[float, Tuple[float, int, bool]]] = field(
        default_factory=dict
    )


class AssessmentEngine:
    """Run Algorithm 1 for a whole network with parallel pure candidates.

    Parameters
    ----------
    config:
        The assessment parameters (bounds, criteria, codec settings).
    workers:
        Thread count for the candidate fan-out.  ``1`` (the default) runs
        the exact serial Algorithm 1 order with no speculation; ``None``
        resolves through ``REPRO_WORKERS`` / ``os.cpu_count()``.  Threads
        (not processes) are the right pool mode here: the hot work is
        BLAS matmuls and lossless codecs, both of which release the GIL,
        and threads share the checkpointed activations for free.
    reuse_activations:
        Checkpoint each assessed layer's input activations once and resume
        candidates from there.  Disable to recompute the upstream forward
        pass per candidate (same results, more FLOPs).
    cache:
        Optional :class:`~repro.store.AssessmentCache`; hits skip the
        evaluation entirely and misses are back-filled.
    checkpoint_budget_bytes:
        Cap on the total size of retained activation checkpoints; layers
        that would exceed it fall back to recomputation.
    """

    def __init__(
        self,
        config: AssessmentConfig | None = None,
        *,
        workers: int | None = 1,
        reuse_activations: bool = True,
        cache=None,
        checkpoint_budget_bytes: int = DEFAULT_CHECKPOINT_BUDGET,
    ) -> None:
        self.config = config or AssessmentConfig()
        self.pool = TaskPool(workers, mode="thread")
        self.workers = self.pool.workers
        self.reuse_activations = bool(reuse_activations)
        self.cache = cache
        self.checkpoint_budget_bytes = int(checkpoint_budget_bytes)
        self.stats = EngineStats()
        self._test_images: Optional[np.ndarray] = None
        self._test_labels: Optional[np.ndarray] = None
        # Lazily built shared state (first cache miss pays for it, a fully
        # cached run never does); guarded for the thread fan-out.
        self._index_bytes: Dict[str, int] = {}
        self._index_lock = threading.Lock()
        self._checkpoints: Optional[Dict[str, np.ndarray]] = None
        self._checkpoint_lock = threading.Lock()
        self._contexts: Dict[str, _LayerContext] = {}

    # -- lazy shared state -------------------------------------------------
    def _layer_index_bytes(self, ctx: _LayerContext) -> int:
        """The layer's lossless index size, computed at most ~once.

        Error-bound-independent, so candidates share it; computed outside
        the lock (a rare duplicate computation is pure and benign, while
        holding the lock would serialise unrelated layers' lzma/bz2 fits).
        """
        with self._index_lock:
            if ctx.name in self._index_bytes:
                return self._index_bytes[ctx.name]
        size = index_blob_bytes(ctx.sparse, self.config)
        with self._index_lock:
            return self._index_bytes.setdefault(ctx.name, size)

    def _layer_checkpoint(
        self, network: Network, ctx: _LayerContext
    ) -> Optional[np.ndarray]:
        """The layer's checkpointed input activations (or None: recompute).

        All assessed layers are captured in one batched forward pass, built
        on the first candidate that actually needs it.  The lock is held
        across the build so concurrent first-misses wait instead of each
        paying for the full pass.
        """
        if not self.reuse_activations:
            return None
        with self._checkpoint_lock:
            if self._checkpoints is None:
                self._checkpoints = self._collect_checkpoints(network)
                self.stats.checkpointed_layers = len(self._checkpoints)
            return self._checkpoints.get(ctx.name)

    def _collect_checkpoints(self, network: Network) -> Dict[str, np.ndarray]:
        """One batched forward pass capturing every assessed layer's inputs.

        Batch boundaries match :meth:`Network.evaluate` so resumed forwards
        are bit-identical to full ones.  Layers whose checkpoint would blow
        the byte budget are skipped (their candidates recompute instead).
        """
        test_images = self._test_images
        batch_size = self.config.eval_batch_size
        dense_names = [c.name for c in self._contexts.values() if c.is_dense]
        if not dense_names or not len(test_images):
            return {}
        kept: List[str] = []
        budget = self.checkpoint_budget_bytes
        for name in dense_names:
            bytes_needed = len(test_images) * network[name].in_features * 4
            if bytes_needed <= budget:
                kept.append(name)
                budget -= bytes_needed
        if not kept:
            return {}
        chunks: Dict[str, List[np.ndarray]] = {name: [] for name in kept}
        for start in range(0, len(test_images), batch_size):
            _, captured = network.forward_collect(
                test_images[start : start + batch_size], kept
            )
            for name in kept:
                chunks[name].append(captured[name])
        return {name: np.concatenate(parts, axis=0) for name, parts in chunks.items()}

    # -- candidate evaluation (pure; runs on pool threads) -----------------
    def _cache_key(self, ctx: _LayerContext, eb: float) -> Optional[Dict[str, object]]:
        if ctx.cache_key_base is None:
            return None
        key = dict(ctx.cache_key_base)
        key["error_bound"] = bound_key(eb)
        return key

    def _evaluate(
        self, network: Network, ctx: _LayerContext, eb: float
    ) -> Tuple[float, int, bool]:
        """Evaluate one candidate; returns (accuracy, size, was_cache_hit).

        Pure with respect to all shared state: the network is read-only, the
        checkpoints are read-only once built, and the cache handles its own
        locking.
        """
        key = self._cache_key(ctx, eb)
        if key is not None and self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached[0], cached[1], True
        config = self.config
        dense, payload_bytes = reconstruct_candidate(ctx.sparse, eb, config)
        size = payload_bytes + self._layer_index_bytes(ctx)
        if ctx.is_dense:
            activations = self._layer_checkpoint(network, ctx)
            if activations is None:
                activations = checkpoint_activations(
                    network, ctx.name, self._test_images, batch_size=config.eval_batch_size
                )
            accuracy = accuracy_with_substitution(
                network,
                ctx.name,
                dense,
                activations,
                self._test_labels,
                batch_size=config.eval_batch_size,
            )
        else:
            # Clone-on-write fallback for non-Dense layers: still pure with
            # respect to the shared network, just without reuse.
            clone = network.clone()
            clone.set_weights(ctx.name, dense)
            accuracy = clone.accuracy(
                self._test_images, self._test_labels, batch_size=config.eval_batch_size
            )
        if key is not None and self.cache is not None:
            self.cache.put(key, accuracy, size)
        return accuracy, size, False

    # -- setup -------------------------------------------------------------
    def _build_contexts(
        self,
        network: Network,
        sparse_layers: Dict[str, SparseLayer],
        test_images: np.ndarray,
        test_labels: np.ndarray,
    ) -> Dict[str, _LayerContext]:
        config = self.config
        names = list(sparse_layers)
        for name in names:
            network[name]  # raises KeyError early for unknown layers

        cache_base: Dict[str, Dict[str, object]] = {}
        if self.cache is not None:
            from repro.store.assess_cache import sha256_array, test_set_digest

            test_sha = test_set_digest(test_images, test_labels)
            for name in names:
                sparse = sparse_layers[name]
                cache_base[name] = {
                    "v": 1,
                    "data_sha": sha256_array(sparse.data),
                    "index_sha": sha256_array(sparse.index),
                    "shape": list(sparse.shape),
                    "codec": config.data_codec,
                    "chunk_size": config.chunk_size,
                    "capacity": config.capacity,
                    "lossless": config.lossless,
                    "index_lossless": list(config.index_lossless_candidates),
                    "test_set": test_sha,
                    "eval_batch_size": config.eval_batch_size,
                }

        return {
            name: _LayerContext(
                name=name,
                sparse=sparse_layers[name],
                is_dense=isinstance(network[name], Dense),
                cache_key_base=cache_base.get(name),
            )
            for name in names
        }

    # -- the sweep ---------------------------------------------------------
    def run(
        self,
        network: Network,
        sparse_layers: Dict[str, SparseLayer],
        test_images: np.ndarray,
        test_labels: np.ndarray,
    ) -> AssessmentResult:
        """Run Algorithm 1 for every layer; see the module docstring."""
        config = self.config
        self.stats = EngineStats()
        self._test_images = test_images
        self._test_labels = test_labels
        self._index_bytes = {}
        self._checkpoints = None
        try:
            baseline = network.accuracy(
                test_images, test_labels, batch_size=config.eval_batch_size
            )
            self._contexts = self._build_contexts(
                network, sparse_layers, test_images, test_labels
            )
            if not sparse_layers:
                recorded: Dict[str, Dict[str, AssessmentPoint]] = {}
            elif self.workers == 1:
                recorded = self._sweep_serial(network, baseline)
            else:
                recorded = self._sweep_speculative(network, baseline)
        finally:
            self._test_images = None
            self._test_labels = None
            self._checkpoints = None
            self._contexts = {}

        layers: Dict[str, LayerAssessment] = {}
        total_tests = 0
        for name in sparse_layers:
            assessment = LayerAssessment(layer=name, baseline_accuracy=baseline)
            assessment._expected_loss = (  # type: ignore[attr-defined]
                config.expected_accuracy_loss
            )
            assessment.points = sorted(
                recorded[name].values(), key=lambda p: p.error_bound
            )
            layers[name] = assessment
            total_tests += len(assessment.points)
        return AssessmentResult(
            network=network.name,
            baseline_accuracy=baseline,
            layers=layers,
            tests_performed=total_tests,
            evaluations=self.stats.evaluations,
            cache_hits=self.stats.cache_hits,
        )

    def _point(
        self, name: str, eb: float, accuracy: float, size: int, baseline: float
    ) -> AssessmentPoint:
        return AssessmentPoint(
            layer=name,
            error_bound=eb,
            accuracy=accuracy,
            degradation=baseline - accuracy,
            compressed_bytes=size,
        )

    def _note(self, hit: bool) -> None:
        if hit:
            self.stats.cache_hits += 1
        else:
            self.stats.evaluations += 1

    def _sweep_serial(
        self, network: Network, baseline: float
    ) -> Dict[str, Dict[str, AssessmentPoint]]:
        """Exact Algorithm 1: delegate to :func:`assess_layer` per layer.

        The control flow (coarse break, fine schedule, canonical-key dedup,
        stop on expected loss) lives in one place — only the evaluator is
        swapped for the engine's pure, cached, checkpoint-resuming one.
        """
        recorded: Dict[str, Dict[str, AssessmentPoint]] = {}
        for name, ctx in self._contexts.items():

            def evaluator(net, layer_name, sparse_layer, eb, images, labels,
                          *, config=None, _ctx=ctx):
                accuracy, size, hit = self._evaluate(net, _ctx, eb)
                self._note(hit)
                return accuracy, size

            assessment, _ = assess_layer(
                network,
                name,
                ctx.sparse,
                self._test_images,
                self._test_labels,
                baseline_accuracy=baseline,
                config=self.config,
                evaluator=evaluator,
            )
            recorded[name] = {
                bound_key(p.error_bound): p for p in assessment.points
            }
        return recorded

    def _sweep_speculative(
        self, network: Network, baseline: float
    ) -> Dict[str, Dict[str, AssessmentPoint]]:
        """Speculative sweep; records exactly the serial point set.

        The coarse scan fans every layer's whole decade schedule out at
        once; the results past each layer's distortion point are trimmed
        from the record but seeded into the fine scan's result map, so a
        fine schedule that climbs back to a trimmed coarse bound reuses the
        computation instead of repeating it.  The fine scans then run
        concurrently across layers, each submitting a lookahead window of
        its next bounds per wave.
        """
        config = self.config
        contexts = self._contexts
        names = list(contexts)

        # -- coarse: all layers x all decades, one wave --------------------
        coarse_tasks = [(name, beta) for name in names for beta in config.coarse_bounds]
        coarse_results = self.pool.map(
            lambda task: self._evaluate(network, contexts[task[0]], task[1]),
            coarse_tasks,
        )
        by_layer: Dict[str, List[Tuple[float, Tuple[float, int, bool]]]] = {
            name: [] for name in names
        }
        for (name, beta), result in zip(coarse_tasks, coarse_results):
            self._note(result[2])
            by_layer[name].append((beta, result))

        recorded: Dict[str, Dict[str, AssessmentPoint]] = {name: {} for name in names}
        scans: Dict[str, _FineScan] = {}
        for name in names:
            fine_start: float | None = None
            consumed = 0
            for beta, (accuracy, size, _) in by_layer[name]:
                consumed += 1
                recorded[name][bound_key(beta)] = self._point(
                    name, beta, accuracy, size, baseline
                )
                if baseline - accuracy > config.distortion_criterion:
                    fine_start = beta / 10.0
                    break
            extras = by_layer[name][consumed:]
            if fine_start is not None:
                scan = _FineScan(
                    schedule=_fine_bounds(fine_start, config.max_fine_tests)
                )
                # Trimmed coarse results stay usable: the fine schedule may
                # climb back up to these bounds.  The exact coarse float is
                # kept with each result — reuse demands bit-equality, since
                # a near-equal bound can compress differently.
                scan.evaluated.update(
                    {bound_key(beta): (beta, result) for beta, result in extras}
                )
                scans[name] = scan
            else:
                # No break means nothing was trimmed (extras is empty).
                self.stats.speculative_wasted += len(extras)

        # -- fine: concurrent per-layer scans with lookahead waves ---------
        active = dict(scans)
        while active:
            # Split the pool across the still-active layers; each layer
            # speculates on its next `lookahead` un-evaluated bounds.
            lookahead = max(1, -(-self.workers // len(active)))
            wave: List[Tuple[str, float]] = []
            for name, scan in active.items():
                pending = 0
                for eb in scan.schedule[scan.position :]:
                    key = bound_key(eb)
                    if key in recorded[name]:
                        continue
                    hit = scan.evaluated.get(key)
                    if hit is not None and hit[0] == eb:
                        continue  # reusable: computed at this exact float
                    wave.append((name, eb))
                    pending += 1
                    if pending >= lookahead:
                        break
            results = self.pool.map(
                lambda task: self._evaluate(network, contexts[task[0]], task[1]),
                wave,
            )
            for (name, eb), result in zip(wave, results):
                self._note(result[2])
                scan = active[name]
                key = bound_key(eb)
                if key in scan.evaluated:
                    # A seeded coarse result at a near-but-not-bit-equal
                    # bound: superseded by the exact evaluation.
                    self.stats.speculative_wasted += 1
                scan.evaluated[key] = (eb, result)
            for name in list(active):
                scan = active[name]
                done = False
                # Advance the cursor over every bound whose result is known
                # at the exact schedule float.
                while scan.position < len(scan.schedule):
                    eb = scan.schedule[scan.position]
                    key = bound_key(eb)
                    known = scan.evaluated.get(key)
                    if key in recorded[name]:
                        point = recorded[name][key]
                    elif known is not None and known[0] == eb:
                        accuracy, size, _ = known[1]
                        point = self._point(name, eb, accuracy, size, baseline)
                        recorded[name][key] = point
                    else:
                        break
                    scan.position += 1
                    if point.degradation > config.expected_accuracy_loss:
                        done = True
                        break
                if done or scan.position >= len(scan.schedule):
                    leftovers = sum(
                        1 for k in scan.evaluated if k not in recorded[name]
                    )
                    self.stats.speculative_wasted += leftovers
                    del active[name]
        return recorded
