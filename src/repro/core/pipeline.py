"""The end-to-end DeepSZ pipeline (Figure 1).

:class:`DeepSZ` chains the four steps — pruning (optional, if the caller has
not already pruned), error-bound assessment, error-bound optimization, and
compressed-model generation — and returns a :class:`DeepSZResult` with
everything the paper's tables report: per-layer sizes (original, two-array,
DeepSZ-compressed), chosen error bounds, top-1/top-5 accuracy before and
after compression, and encode/decode timing breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.assessment import AssessmentConfig, AssessmentResult, assess_network
from repro.core.decoder import DeepSZDecoder
from repro.core.encoder import CompressedModel, DeepSZEncoder
from repro.core.optimizer import (
    OptimizerConfig,
    OptimizationPlan,
    optimize_error_bounds,
    optimize_for_size_budget,
)
from repro.nn.network import Network
from repro.pruning.magnitude import PrunedNetwork, PruningConfig, prune_network
from repro.store.assess_cache import AssessmentCache
from repro.utils.errors import ValidationError
from repro.utils.rng import make_rng
from repro.utils.timing import Timer, TimingBreakdown
from repro.utils.validation import check_positive

__all__ = ["DeepSZConfig", "LayerReport", "DeepSZResult", "DeepSZ", "assessment_subset"]


def assessment_subset(
    test_images: np.ndarray,
    test_labels: np.ndarray,
    samples: int | None,
    seed: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """A seeded shuffled subset of the test set for Step 2.

    A head slice (``test_images[:n]``) is class-biased on ordered datasets —
    measured degradations would then reflect only the leading classes and
    silently skew the optimizer's plan.  A seeded permutation keeps the draw
    representative *and* reproducible (same seed, same subset, same
    assessment points).
    """
    if samples is None or samples >= len(test_images):
        return test_images, test_labels
    order = make_rng(seed).permutation(len(test_images))[:samples]
    return test_images[order], test_labels[order]


@dataclass(frozen=True)
class DeepSZConfig:
    """User-facing configuration of the whole pipeline.

    ``mode`` selects between the paper's two operating modes:

    * ``"expected-accuracy"`` (default): compress as much as possible while
      keeping the predicted accuracy loss within ``expected_accuracy_loss``;
    * ``"expected-ratio"``: reach at least ``target_ratio`` (relative to the
      dense fc-layer size) while losing as little accuracy as possible.
    """

    expected_accuracy_loss: float = 0.004
    mode: str = "expected-accuracy"
    target_ratio: float | None = None
    distortion_criterion: float = 0.001
    coarse_bounds: Sequence[float] = (1e-3, 1e-2, 1e-1)
    capacity: int = 65536
    sz_lossless: str = "zlib"
    index_lossless_candidates: Sequence[str] = ("zlib", "lzma", "bz2")
    optimizer_resolution: int = 100
    eval_batch_size: int = 256
    topk: Sequence[int] = (1, 5)
    assessment_samples: int | None = None  #: cap on test samples used by Step 2
    assessment_seed: int | None = None  #: seed of the Step 2 subset draw (None = library default)
    assessment_cache: str | None = None  #: directory of a persistent candidate-result cache
    data_codec: str = "sz"  #: registry name of the error-bounded data codec
    chunk_size: int | None = None  #: v2 chunked container chunk size (elements)
    workers: int = 1  #: pool workers for the assessment and encode/decode fan-outs
    #: Reconstruct the compressed model for sparse (compressed-domain)
    #: inference: the verification decode stops at the two-array form and the
    #: reported compressed accuracy is measured through CSC matmuls — the
    #: execution mode a sparse-serving edge node actually runs.
    sparse_inference: bool = False

    def __post_init__(self) -> None:
        check_positive(self.expected_accuracy_loss, "expected_accuracy_loss")
        if self.mode not in ("expected-accuracy", "expected-ratio"):
            raise ValidationError("mode must be 'expected-accuracy' or 'expected-ratio'")
        if self.mode == "expected-ratio":
            if self.target_ratio is None or self.target_ratio <= 1.0:
                raise ValidationError("expected-ratio mode needs target_ratio > 1")
        if self.assessment_samples is not None and self.assessment_samples < 1:
            raise ValidationError("assessment_samples must be positive (or None)")
        if int(self.workers) < 1:
            raise ValidationError("workers must be >= 1")
        # Validate the codec selection now: Step 4 would otherwise be the
        # first to notice, after the expensive Step 2 assessment has run.
        from repro.codecs import resolve_error_bounded_codec

        resolve_error_bounded_codec(self.data_codec, chunk_size=self.chunk_size)

    def assessment_config(self) -> AssessmentConfig:
        return AssessmentConfig(
            expected_accuracy_loss=self.expected_accuracy_loss,
            distortion_criterion=self.distortion_criterion,
            coarse_bounds=tuple(self.coarse_bounds),
            capacity=self.capacity,
            lossless=self.sz_lossless,
            index_lossless_candidates=tuple(self.index_lossless_candidates),
            eval_batch_size=self.eval_batch_size,
            data_codec=self.data_codec,
            chunk_size=self.chunk_size,
        )


@dataclass(frozen=True)
class LayerReport:
    """Per-layer statistics as reported in Tables 2a–2d."""

    layer: str
    original_bytes: int
    pruning_ratio: float  #: fraction of weights kept
    csr_bytes: int  #: two-array (40-bit/entry) size
    compressed_bytes: int  #: DeepSZ size (SZ data + lossless index)
    error_bound: float

    @property
    def csr_ratio(self) -> float:
        return self.original_bytes / self.csr_bytes if self.csr_bytes else float("inf")

    @property
    def deepsz_ratio(self) -> float:
        return (
            self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")
        )


@dataclass
class DeepSZResult:
    """Everything the evaluation section reports for one network."""

    network: str
    assessment: AssessmentResult
    plan: OptimizationPlan
    model: CompressedModel
    layer_reports: Dict[str, LayerReport]
    baseline_accuracy: Dict[int, float]
    compressed_accuracy: Dict[int, float]
    encoding_seconds: float
    decoding_timing: TimingBreakdown
    assessment_tests: int

    @property
    def original_fc_bytes(self) -> int:
        return int(sum(r.original_bytes for r in self.layer_reports.values()))

    @property
    def csr_fc_bytes(self) -> int:
        return int(sum(r.csr_bytes for r in self.layer_reports.values()))

    @property
    def compressed_fc_bytes(self) -> int:
        return int(sum(r.compressed_bytes for r in self.layer_reports.values()))

    @property
    def pruning_ratio_overall(self) -> float:
        """Weighted fraction of weights kept across the compressed fc-layers."""
        total = sum(r.original_bytes for r in self.layer_reports.values())
        if not total:
            return 0.0
        return float(
            sum(r.pruning_ratio * r.original_bytes for r in self.layer_reports.values()) / total
        )

    @property
    def csr_compression_ratio(self) -> float:
        return self.original_fc_bytes / self.csr_fc_bytes if self.csr_fc_bytes else float("inf")

    @property
    def compression_ratio(self) -> float:
        compressed = self.compressed_fc_bytes
        return self.original_fc_bytes / compressed if compressed else float("inf")

    def save_archive(self, path) -> int:
        """Write the compressed model as a random-access ``.dsz`` archive
        (the deployment artifact: per-layer random access + checksums);
        returns the bytes written."""
        return self.model.save(path)

    @property
    def top1_loss(self) -> float:
        return self.baseline_accuracy.get(1, 0.0) - self.compressed_accuracy.get(1, 0.0)

    @property
    def top5_loss(self) -> float:
        if 5 not in self.baseline_accuracy:
            return 0.0
        return self.baseline_accuracy[5] - self.compressed_accuracy.get(5, 0.0)


class DeepSZ:
    """The DeepSZ framework: prune -> assess -> optimize -> encode."""

    def __init__(self, config: DeepSZConfig | None = None) -> None:
        self.config = config or DeepSZConfig()

    def prune(
        self,
        network: Network,
        pruning_ratios: Mapping[str, float],
        *,
        train_images: Optional[np.ndarray] = None,
        train_labels: Optional[np.ndarray] = None,
        retrain: bool = True,
    ) -> PrunedNetwork:
        """Step 1 convenience wrapper around :func:`repro.pruning.prune_network`."""
        config = PruningConfig(ratios=dict(pruning_ratios), retrain=retrain)
        return prune_network(
            network, config, train_images=train_images, train_labels=train_labels
        )

    def compress(
        self,
        pruned: PrunedNetwork,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        *,
        evaluator=None,
    ) -> DeepSZResult:
        """Steps 2–4 on an already pruned network."""
        cfg = self.config
        network = pruned.network
        sparse_layers = pruned.sparse_layers
        if not sparse_layers:
            raise ValidationError("the pruned network has no sparse fc-layers to compress")

        encode_timer = Timer().start()

        # Step 2: error bound assessment (Algorithm 1).  The assessment may
        # run on a capped subset of the test set (assessment_samples); the
        # final accuracies reported below always use the full test set.
        assess_images, assess_labels = assessment_subset(
            test_images, test_labels, cfg.assessment_samples, cfg.assessment_seed
        )
        cache = (
            AssessmentCache(cfg.assessment_cache)
            if cfg.assessment_cache is not None
            else None
        )
        assessment = assess_network(
            network,
            sparse_layers,
            assess_images,
            assess_labels,
            config=cfg.assessment_config(),
            evaluator=evaluator,
            workers=cfg.workers,
            cache=cache,
        )

        # Step 3: error bound configuration (Algorithm 2).
        candidates = assessment.candidates()
        if cfg.mode == "expected-accuracy":
            plan = optimize_error_bounds(
                candidates,
                OptimizerConfig(
                    expected_accuracy_loss=cfg.expected_accuracy_loss,
                    resolution=cfg.optimizer_resolution,
                ),
            )
        else:
            dense_bytes = sum(s.dense_bytes for s in sparse_layers.values())
            budget = int(dense_bytes / float(cfg.target_ratio))
            plan = optimize_for_size_budget(candidates, budget)

        # Step 4: compressed model generation.
        encoder = DeepSZEncoder(
            capacity=cfg.capacity,
            sz_lossless=cfg.sz_lossless,
            index_lossless_candidates=cfg.index_lossless_candidates,
            data_codec=cfg.data_codec,
            chunk_size=cfg.chunk_size,
            workers=cfg.workers,
        )
        model = encoder.encode(
            network.name,
            sparse_layers,
            plan.error_bounds,
            expected_accuracy_loss=cfg.expected_accuracy_loss,
        )
        encoding_seconds = encode_timer.stop()

        # Decode once to measure the decode-path timing and the actual
        # accuracy of the compressed model.  In sparse-inference mode the
        # decode stops at the two-array form and the accuracy below is
        # measured through the compressed-domain (CSC matmul) forward pass.
        decoder = DeepSZDecoder(workers=cfg.workers)
        reconstructed = network.clone()
        decoded = decoder.apply(model, reconstructed, sparse=cfg.sparse_inference)

        baseline_acc = network.evaluate(
            test_images, test_labels, batch_size=cfg.eval_batch_size, topk=cfg.topk
        )
        compressed_acc = reconstructed.evaluate(
            test_images, test_labels, batch_size=cfg.eval_batch_size, topk=cfg.topk
        )

        layer_reports = {
            name: LayerReport(
                layer=name,
                original_bytes=sparse_layers[name].dense_bytes,
                pruning_ratio=sparse_layers[name].density,
                csr_bytes=sparse_layers[name].packed_bytes,
                compressed_bytes=model.layers[name].compressed_bytes,
                error_bound=plan.error_bounds[name],
            )
            for name in sparse_layers
        }

        return DeepSZResult(
            network=network.name,
            assessment=assessment,
            plan=plan,
            model=model,
            layer_reports=layer_reports,
            baseline_accuracy=baseline_acc,
            compressed_accuracy=compressed_acc,
            encoding_seconds=encoding_seconds,
            decoding_timing=decoded.timing,
            assessment_tests=assessment.tests_performed,
        )

    def run(
        self,
        network: Network,
        pruning_ratios: Mapping[str, float],
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        *,
        retrain: bool = True,
    ) -> DeepSZResult:
        """All four steps starting from a trained (dense) network."""
        pruned = self.prune(
            network,
            pruning_ratios,
            train_images=train_images,
            train_labels=train_labels,
            retrain=retrain,
        )
        return self.compress(pruned, test_images, test_labels)
