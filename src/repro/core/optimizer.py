"""Optimization of the error-bound configuration (Step 3, Algorithm 2).

Given, for every fc-layer, a list of tested error bounds with their measured
accuracy degradation and compressed size, the optimizer picks one bound per
layer.  Two modes are provided, as in the paper:

* **expected-accuracy mode** (:func:`optimize_error_bounds`, the default):
  minimise the total compressed size subject to the summed degradation not
  exceeding the user's expected accuracy loss.  This is the knapsack-style
  dynamic program of Algorithm 2: the accuracy budget is discretised into
  ``resolution`` steps, ``S[layer][budget]`` holds the minimum total size of
  the first layers within that budget, and a trace-back recovers the chosen
  bound per layer.

* **expected-ratio mode** (:func:`optimize_for_size_budget`): minimise the
  summed degradation subject to a total-size budget — the same DP with the
  roles of size and accuracy swapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.assessment import AssessmentPoint
from repro.utils.errors import OptimizationError, ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "OptimizerConfig",
    "OptimizationPlan",
    "optimize_error_bounds",
    "optimize_for_size_budget",
]


@dataclass(frozen=True)
class OptimizerConfig:
    """Parameters of the Algorithm 2 dynamic program."""

    expected_accuracy_loss: float = 0.004
    resolution: int = 100  #: number of accuracy budget steps (the paper's 100 x eps*)
    allow_negative_degradation: bool = True

    def __post_init__(self) -> None:
        check_positive(self.expected_accuracy_loss, "expected_accuracy_loss")
        if self.resolution < 1:
            raise ValidationError("resolution must be positive")


@dataclass(frozen=True)
class OptimizationPlan:
    """The chosen per-layer error bounds and their predicted cost."""

    error_bounds: Dict[str, float]
    predicted_loss: float
    total_compressed_bytes: int
    per_layer_bytes: Dict[str, int]

    def __post_init__(self) -> None:
        if set(self.error_bounds) != set(self.per_layer_bytes):
            raise ValidationError("error_bounds and per_layer_bytes must cover the same layers")


def _quantize_delta(delta: float, step: float, allow_negative: bool) -> int:
    """Conservative (ceiling) quantization of a degradation onto the DP grid."""
    if delta <= 0 and allow_negative:
        return 0
    return int(np.ceil(max(delta, 0.0) / step - 1e-12))


def optimize_error_bounds(
    candidates: Mapping[str, Sequence[AssessmentPoint]],
    config: OptimizerConfig | None = None,
) -> OptimizationPlan:
    """Expected-accuracy mode: smallest model within the accuracy-loss budget."""
    config = config or OptimizerConfig()
    if not candidates:
        raise ValidationError("no candidate layers to optimize")
    layers = list(candidates)
    steps = config.resolution
    step_size = config.expected_accuracy_loss / steps
    budget_slots = steps + 1

    INF = float("inf")
    # dp[b] = minimal total size of the layers processed so far using exactly
    # budget <= b; choice[layer][b] = index of the candidate chosen.
    dp = np.zeros(budget_slots)
    choices: List[np.ndarray] = []

    for layer in layers:
        points = list(candidates[layer])
        if not points:
            raise OptimizationError(f"layer {layer!r} has no assessment candidates")
        new_dp = np.full(budget_slots, INF)
        choice = np.full(budget_slots, -1, dtype=np.int64)
        for idx, point in enumerate(points):
            cost = _quantize_delta(
                point.degradation, step_size, config.allow_negative_degradation
            )
            if cost > steps:
                continue  # this bound alone blows the budget
            size = float(point.compressed_bytes)
            # For every achievable previous budget b, taking this candidate
            # lands at budget b + cost.
            prev = dp[: budget_slots - cost]
            updated = prev + size
            target = new_dp[cost:budget_slots]
            better = updated < target
            new_dp[cost:budget_slots] = np.where(better, updated, target)
            choice[cost:budget_slots] = np.where(better, idx, choice[cost:budget_slots])
        if not np.isfinite(new_dp).any():
            raise OptimizationError(
                f"no feasible error bound for layer {layer!r} within the accuracy budget; "
                "re-run the assessment with a smaller starting bound"
            )
        dp = new_dp
        choices.append(choice)

    # Find the cheapest total size over all budgets, then trace back.
    best_budget = int(np.argmin(dp))
    if not np.isfinite(dp[best_budget]):
        raise OptimizationError("optimizer found no feasible configuration")

    error_bounds: Dict[str, float] = {}
    per_layer_bytes: Dict[str, int] = {}
    predicted = 0.0
    budget = best_budget
    for layer_idx in range(len(layers) - 1, -1, -1):
        layer = layers[layer_idx]
        points = list(candidates[layer])
        idx = int(choices[layer_idx][budget])
        if idx < 0:
            raise OptimizationError("trace-back failed; inconsistent DP tables")
        point = points[idx]
        error_bounds[layer] = point.error_bound
        per_layer_bytes[layer] = point.compressed_bytes
        predicted += point.degradation
        budget -= _quantize_delta(
            point.degradation, step_size, config.allow_negative_degradation
        )
    return OptimizationPlan(
        error_bounds=error_bounds,
        predicted_loss=float(predicted),
        total_compressed_bytes=int(sum(per_layer_bytes.values())),
        per_layer_bytes=per_layer_bytes,
    )


def optimize_for_size_budget(
    candidates: Mapping[str, Sequence[AssessmentPoint]],
    size_budget_bytes: int,
    *,
    resolution: int = 200,
) -> OptimizationPlan:
    """Expected-ratio mode: most accurate model within a total-size budget."""
    if not candidates:
        raise ValidationError("no candidate layers to optimize")
    if size_budget_bytes <= 0:
        raise ValidationError("size_budget_bytes must be positive")
    if resolution < 1:
        raise ValidationError("resolution must be positive")

    layers = list(candidates)
    step_size = size_budget_bytes / resolution
    slots = resolution + 1
    INF = float("inf")
    dp = np.zeros(slots)  # dp[b] = minimal total degradation with size <= b*step
    choices: List[np.ndarray] = []

    for layer in layers:
        points = list(candidates[layer])
        if not points:
            raise OptimizationError(f"layer {layer!r} has no assessment candidates")
        new_dp = np.full(slots, INF)
        choice = np.full(slots, -1, dtype=np.int64)
        for idx, point in enumerate(points):
            cost = int(np.ceil(point.compressed_bytes / step_size - 1e-12))
            if cost > resolution:
                continue
            delta = max(point.degradation, 0.0)
            prev = dp[: slots - cost]
            updated = prev + delta
            target = new_dp[cost:slots]
            better = updated < target
            new_dp[cost:slots] = np.where(better, updated, target)
            choice[cost:slots] = np.where(better, idx, choice[cost:slots])
        if not np.isfinite(new_dp).any():
            raise OptimizationError(
                f"size budget of {size_budget_bytes} bytes is too small for layer {layer!r}"
            )
        dp = new_dp
        choices.append(choice)

    best_budget = int(np.argmin(dp))
    if not np.isfinite(dp[best_budget]):
        raise OptimizationError("no configuration fits the size budget")

    error_bounds: Dict[str, float] = {}
    per_layer_bytes: Dict[str, int] = {}
    predicted = 0.0
    budget = best_budget
    for layer_idx in range(len(layers) - 1, -1, -1):
        layer = layers[layer_idx]
        points = list(candidates[layer])
        idx = int(choices[layer_idx][budget])
        if idx < 0:
            raise OptimizationError("trace-back failed; inconsistent DP tables")
        point = points[idx]
        error_bounds[layer] = point.error_bound
        per_layer_bytes[layer] = point.compressed_bytes
        predicted += point.degradation
        budget -= int(np.ceil(point.compressed_bytes / step_size - 1e-12))
    return OptimizationPlan(
        error_bounds=error_bounds,
        predicted_loss=float(predicted),
        total_compressed_bytes=int(sum(per_layer_bytes.values())),
        per_layer_bytes=per_layer_bytes,
    )
