"""DeepSZ reproduction: error-bounded lossy compression of deep neural networks.

This library is a from-scratch reproduction of *DeepSZ: A Novel Framework to
Compress Deep Neural Networks by Using Error-Bounded Lossy Compression*
(Jin et al., HPDC 2019), including every substrate the paper depends on:

* :mod:`repro.codecs` — the unified codec registry (name + capability based
  lookup over every compression back end);
* :mod:`repro.sz` — the SZ error-bounded lossy compressor (prediction,
  linear-scaling quantization, Huffman coding, lossless back ends);
* :mod:`repro.zfp` — a ZFP-style block transform codec (the Figure 2 baseline);
* :mod:`repro.nn` — a NumPy neural-network framework with training
  (the Caffe substitute) plus the paper-scale architecture specs;
* :mod:`repro.data` — synthetic MNIST-like / ImageNet-like datasets;
* :mod:`repro.pruning` — magnitude pruning, masked retraining, and the
  two-array sparse weight format;
* :mod:`repro.baselines` — Deep Compression and Weightless;
* :mod:`repro.core` — the DeepSZ framework itself (error bound assessment,
  accuracy model, error-bound optimization, compressed model generation);
* :mod:`repro.parallel` — the process-pool assessment harness;
* :mod:`repro.store` — the random-access ``.dsz`` model archive and the
  SHA-256 content-addressed :class:`~repro.store.ModelStore`;
* :mod:`repro.serve` — the on-demand serving runtime (decoded-layer LRU
  cache, lazy :class:`~repro.serve.ModelRuntime`, batching
  :class:`~repro.serve.Server`);
* :mod:`repro.analysis` — metrics and table/figure renderers.

Quickstart
----------
>>> from repro.core import DeepSZ, DeepSZConfig
>>> from repro.nn import models
>>> from repro.data import mnist_like, train_test_split
>>> # see examples/quickstart.py for the full pruning + compression flow
"""

from repro import (
    analysis,
    baselines,
    codecs,
    core,
    data,
    nn,
    parallel,
    pruning,
    serve,
    store,
    sz,
    utils,
    zfp,
)
from repro.core import DeepSZ, DeepSZConfig, DeepSZResult

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "baselines",
    "codecs",
    "core",
    "data",
    "nn",
    "parallel",
    "pruning",
    "serve",
    "store",
    "sz",
    "utils",
    "zfp",
    "DeepSZ",
    "DeepSZConfig",
    "DeepSZResult",
    "__version__",
]
