"""The :class:`Codec` protocol and capability metadata.

Every compression back end in the repository — the SZ error-bounded pipeline,
the ZFP-style block codec, and the byte-level lossless backends — is exposed
through one uniform interface so that higher layers (the DeepSZ encoder /
decoder, the assessment harness, benchmarks) select codecs by *name and
capability* instead of importing concrete classes.

A codec is a stateless object with two byte-oriented entry points:

* ``compress(data, **options) -> bytes`` — options are codec-specific
  keyword arguments (``error_bound``, ``chunk_size``, ``workers``, ...);
  every codec ignores options it does not understand, so callers can pass a
  shared option set to interchangeable codecs.
* ``decompress(payload, **options)`` — returns a ``float32`` array for array
  codecs and ``bytes`` for byte codecs.

Capabilities are declared up front in :class:`CodecInfo` so callers can
filter (e.g. "error-bounded array codecs only") before committing to a name.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Union

import numpy as np

__all__ = ["CodecInfo", "Codec"]


@dataclass(frozen=True)
class CodecInfo:
    """Capability metadata of one registered codec.

    Attributes
    ----------
    name:
        Registry key.
    error_bounded:
        The codec honours a per-call ``error_bound`` option (lossy codecs
        with a hard element-wise guarantee).
    lossless:
        Decompression reproduces the input bit-exactly.
    chunked:
        The codec can emit a chunked container whose pieces are
        independently decodable (and therefore encode/decode in parallel
        with a ``workers`` option).
    input_kind:
        ``"float32"`` for 1-D array codecs, ``"bytes"`` for byte codecs.
    description:
        One-line human-readable summary.
    aliases:
        Alternative registry names resolving to this codec.
    """

    name: str
    error_bounded: bool = False
    lossless: bool = False
    chunked: bool = False
    input_kind: str = "float32"
    description: str = ""
    aliases: tuple[str, ...] = field(default=())


class Codec(abc.ABC):
    """Uniform compress/decompress interface over every back end.

    Concrete codecs are stateless: per-call behaviour is controlled entirely
    through keyword options, so one registered instance serves all callers.
    """

    info: CodecInfo

    @property
    def name(self) -> str:
        return self.info.name

    @abc.abstractmethod
    def compress(self, data: Union[np.ndarray, bytes], **options) -> bytes:
        """Compress ``data`` into a self-describing payload."""

    @abc.abstractmethod
    def decompress(self, payload: bytes, **options) -> Union[np.ndarray, bytes]:
        """Invert :meth:`compress`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.info.name!r}>"
