"""Unified codec registry.

Every compression back end in the repository is reachable through one
name-based registry with capability metadata:

>>> from repro import codecs
>>> codecs.available_codecs(error_bounded=True)
['sz', 'zfp']
>>> codec = codecs.get_codec("sz")
>>> payload = codec.compress(array, error_bound=1e-3, chunk_size=1 << 20, workers=4)
>>> restored = codec.decompress(payload, workers=4)

Byte-level lossless codecs (``zlib``, ``lzma``, ``bz2``, ``store`` and their
aliases) are registered alongside the array codecs, and
:func:`best_fit_lossless` runs the paper's best-fit selection over them.

The DeepSZ encoder/decoder and the assessment harness resolve their codecs
here, so adding a back end is: implement :class:`Codec`, call
:func:`register_codec`, pass its name to
:class:`repro.core.DeepSZEncoder`.
"""

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.registry import (
    available_codecs,
    best_fit_lossless,
    codec_info,
    get_codec,
    register_codec,
    resolve_error_bounded_codec,
    unregister_codec,
)
from repro.codecs import builtin as _builtin  # noqa: F401  (registers built-ins)
from repro.codecs.builtin import LosslessByteCodec, SZCodec, ZFPCodec

__all__ = [
    "Codec",
    "CodecInfo",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "codec_info",
    "available_codecs",
    "best_fit_lossless",
    "resolve_error_bounded_codec",
    "SZCodec",
    "ZFPCodec",
    "LosslessByteCodec",
]
