"""Name-based codec registry with capability filtering.

The registry is the single lookup point for every compression back end in
the repository.  Registration happens at import time of
:mod:`repro.codecs.builtin` (the adapters for SZ, ZFP and the lossless
backends); third-party code can register additional codecs at runtime with
:func:`register_codec`.

Lookups accept either a codec's canonical name or one of its declared
aliases.  :func:`available_codecs` supports capability filters so callers
can enumerate, say, every error-bounded array codec, and
:func:`best_fit_lossless` implements the paper's best-fit lossless selection
(Step 4 / Fig. 4) over the registered byte codecs.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.codecs.base import Codec, CodecInfo
from repro.utils.errors import ConfigurationError

__all__ = [
    "register_codec",
    "unregister_codec",
    "get_codec",
    "codec_info",
    "available_codecs",
    "best_fit_lossless",
    "resolve_error_bounded_codec",
]

_REGISTRY: Dict[str, Codec] = {}
_ALIASES: Dict[str, str] = {}


def register_codec(codec: Codec) -> Codec:
    """Register a codec under its canonical name and aliases.

    Re-registering a name overwrites the previous entry (mirroring the
    lossless-backend registry's behaviour).  Returns the codec so the call
    can be used as a decorator-style one-liner on instances.
    """
    info = codec.info
    if not info.name:
        raise ConfigurationError("codec must have a non-empty name")
    _REGISTRY[info.name] = codec
    for alias in info.aliases:
        _ALIASES[alias] = info.name
    return codec


def unregister_codec(name: str) -> None:
    """Remove a codec (and its aliases) from the registry."""
    codec = _REGISTRY.pop(name, None)
    if codec is not None:
        for alias in codec.info.aliases:
            _ALIASES.pop(alias, None)


def get_codec(name: str) -> Codec:
    """Look up a codec by canonical name or alias."""
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None


def codec_info(name: str) -> CodecInfo:
    """Capability metadata of a registered codec."""
    return get_codec(name).info


def resolve_error_bounded_codec(name: str, *, chunk_size: int | None = None) -> Codec:
    """Look up a data codec and validate it for error-bounded (and,
    optionally, chunked) use.

    The single validation point shared by :class:`repro.core.DeepSZEncoder`
    and :class:`repro.core.DeepSZConfig`, so misconfiguration raises the
    same :class:`ConfigurationError` everywhere.
    """
    codec = get_codec(name)
    if not codec.info.error_bounded:
        raise ConfigurationError(
            f"data codec {name!r} is not error-bounded; pick one of "
            f"{available_codecs(error_bounded=True)}"
        )
    if chunk_size is not None:
        if not codec.info.chunked:
            raise ConfigurationError(
                f"data codec {name!r} does not support chunked containers"
            )
        if int(chunk_size) < 1:
            raise ConfigurationError(
                "chunk_size must be a positive element count"
            )
    return codec


def available_codecs(
    *,
    error_bounded: bool | None = None,
    lossless: bool | None = None,
    chunked: bool | None = None,
    input_kind: str | None = None,
) -> list[str]:
    """Names of registered codecs matching every given capability filter.

    ``None`` filters are ignored; aliases are not listed.
    """
    names = []
    for name, codec in _REGISTRY.items():
        info = codec.info
        if error_bounded is not None and info.error_bounded != error_bounded:
            continue
        if lossless is not None and info.lossless != lossless:
            continue
        if chunked is not None and info.chunked != chunked:
            continue
        if input_kind is not None and info.input_kind != input_kind:
            continue
        names.append(name)
    return sorted(names)


def best_fit_lossless(
    data: bytes, candidates: Iterable[str | Codec] | None = None
) -> tuple[str, bytes]:
    """Compress ``data`` with every candidate byte codec, keep the smallest.

    This is the paper's best-fit lossless selection (Step 4 / Fig. 4) routed
    through the unified registry.  ``candidates`` defaults to every
    registered lossless byte codec; entries may be registry names or codec
    instances (the latter lets pool workers skip the name lookup, whose
    registry only holds built-ins under spawn start methods).  Returns
    ``(winner_name, payload)``.
    """
    entries: list[str | Codec] = (
        list(candidates)
        if candidates is not None
        else list(available_codecs(lossless=True, input_kind="bytes"))
    )
    if not entries:
        raise ConfigurationError("no lossless byte codecs to choose from")
    best: tuple[str, bytes] | None = None
    for entry in entries:
        codec = entry if isinstance(entry, Codec) else get_codec(entry)
        out = codec.compress(data)
        if best is None or len(out) < len(best[1]):
            best = (codec.info.name, out)
    assert best is not None
    return best
