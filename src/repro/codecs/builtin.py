"""Adapters registering the built-in back ends with the codec registry.

Importing this module (which :mod:`repro.codecs` does eagerly) registers:

* ``"sz"`` — the error-bounded SZ pipeline (:mod:`repro.sz.compressor`),
  including its chunked v2 container and ``workers`` parallelism;
* ``"zfp"`` — the ZFP-style block transform codec (:mod:`repro.zfp.codec`);
* every lossless backend from :mod:`repro.sz.lossless` (``zlib``, ``lzma``,
  ``bz2``, ``store`` plus their aliases) as byte codecs.

The adapters are thin: they translate the uniform keyword-option surface of
:class:`repro.codecs.base.Codec` into each back end's native configuration
object and ignore options the back end does not understand, so the DeepSZ
encoder can hand one option set to whichever data codec is selected.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.codecs.base import Codec, CodecInfo
from repro.codecs.registry import register_codec
from repro.obs import profile
from repro.sz import lossless as sz_lossless
from repro.sz.compressor import SZCompressionResult, SZCompressor
from repro.sz.config import SZConfig
from repro.zfp.codec import ZFPCompressor, ZFPConfig

__all__ = ["SZCodec", "ZFPCodec", "LosslessByteCodec"]


class SZCodec(Codec):
    """Registry adapter for the SZ error-bounded compressor."""

    info = CodecInfo(
        name="sz",
        error_bounded=True,
        lossless=False,
        chunked=True,
        input_kind="float32",
        description="SZ: Lorenzo/adaptive prediction + quantization + Huffman",
    )

    @staticmethod
    def _config(
        *,
        error_bound: float = 1e-3,
        mode: str = "abs",
        predictor: str | None = None,
        capacity: int = 65536,
        lossless: str = "zlib",
        chunk_size: int | None = None,
        **_ignored,
    ) -> SZConfig:
        kwargs: dict = {
            "error_bound": error_bound,
            "mode": mode,
            "capacity": capacity,
            "lossless": lossless,
            "chunk_size": chunk_size,
        }
        if predictor is not None:
            kwargs["predictor"] = predictor
        return SZConfig(**kwargs)

    def compress(self, data: np.ndarray, *, workers: int = 1, **options) -> bytes:
        return self.compress_result(data, workers=workers, **options).payload

    def compress_result(
        self, data: np.ndarray, *, workers: int = 1, **options
    ) -> SZCompressionResult:
        """Compress and return the full :class:`SZCompressionResult`."""
        return SZCompressor(self._config(**options)).compress(data, workers=workers)

    def decompress(self, payload: bytes, *, workers: int = 1, **_options) -> np.ndarray:
        return SZCompressor().decompress(payload, workers=workers)


class ZFPCodec(Codec):
    """Registry adapter for the ZFP-style block transform codec."""

    info = CodecInfo(
        name="zfp",
        error_bounded=True,
        lossless=False,
        chunked=False,
        input_kind="float32",
        description="ZFP-style block floating-point transform codec",
    )

    @staticmethod
    def _config(
        *,
        error_bound: float | None = 1e-3,
        rate_bits: int | None = None,
        block_size: int = 32,
        use_transform: bool = False,
        **_ignored,
    ) -> ZFPConfig:
        tolerance = None if rate_bits is not None else error_bound
        return ZFPConfig(
            tolerance=tolerance,
            rate_bits=rate_bits,
            block_size=block_size,
            use_transform=use_transform,
        )

    def compress(self, data: np.ndarray, **options) -> bytes:
        return ZFPCompressor(self._config(**options)).compress(data).payload

    def decompress(self, payload: bytes, **_options) -> np.ndarray:
        return ZFPCompressor().decompress(payload)


class LosslessByteCodec(Codec):
    """Registry adapter wrapping one :class:`repro.sz.lossless.LosslessBackend`.

    The codec holds the backend object itself (rather than re-resolving it
    by name on every call), so a pickled codec instance keeps working inside
    spawn-started pool workers whose :mod:`repro.sz.lossless` registry only
    contains the built-ins.  Backends registered or *replaced* after import
    are still picked up transparently: every
    :func:`repro.sz.lossless.register_backend` call fires the registration
    hook, which re-registers a fresh adapter wrapping the new backend.
    """

    def __init__(
        self, backend: sz_lossless.LosslessBackend, aliases: tuple[str, ...] = ()
    ) -> None:
        self._backend = backend
        self.info = CodecInfo(
            name=backend.name,
            error_bounded=False,
            lossless=True,
            chunked=False,
            input_kind="bytes",
            description=f"lossless byte codec ({backend.name})",
            aliases=aliases,
        )

    def compress(self, data: Union[bytes, bytearray, memoryview], **_options) -> bytes:
        return self._backend.compress(bytes(data))

    def decompress(self, payload: bytes, **_options) -> bytes:
        # Registry-path lossless decodes (e.g. a layer's index array) count
        # toward the same "lossless" decode stage as the SZ-internal pass.
        with profile.stage("lossless"):
            return self._backend.decompress(payload)


def _register_lossless(backend: sz_lossless.LosslessBackend) -> None:
    # Invert the lossless alias table so each backend advertises its aliases.
    aliases = tuple(
        sorted(
            alias
            for alias, target in sz_lossless._ALIASES.items()
            if target == backend.name
        )
    )
    register_codec(LosslessByteCodec(backend, aliases))


def _register_builtin() -> None:
    register_codec(SZCodec())
    register_codec(ZFPCodec())
    # The hook replays the already-registered backends and fires again for
    # every future sz_lossless.register_backend call, so backends registered
    # at runtime stay visible through the unified registry too.
    sz_lossless.add_registration_hook(_register_lossless)


_register_builtin()
